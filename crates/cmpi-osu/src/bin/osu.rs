//! Command-line front end for the micro-benchmark suite.
//!
//! ```text
//! osu <bench> [--scenario intra|inter|2hosts|native-intra|native-inter]
//!             [--policy def|opt|shm|cma|hca] [--max-size N] [--iters N]
//!             [--profile] [--profile-json PATH]
//!             [--metrics] [--metrics-json PATH]
//! ```
//!
//! `--profile` re-runs the bench kernel at the largest size with the
//! causal profiler on and prints the per-peer channel matrix plus the
//! wait-state decomposition; `--profile-json PATH` writes the same
//! profile as JSON (round-trip-validated before the write).
//!
//! `--metrics` re-runs the kernel and prints the always-on telemetry
//! snapshot as Prometheus exposition text plus the health verdict;
//! `--metrics-json PATH` writes the same snapshot as JSON. Both
//! outputs are validated before leaving the process.
//!
//! Benches: latency, bw, bibw, put-lat, put-bw, get-lat, get-bw,
//! bcast, allreduce, allgather, alltoall, barrier, reduce, gather, scatter,
//! reduce-scatter, scan.

use cmpi_cluster::{Channel, DeploymentScenario, NamespaceSharing};
use cmpi_core::{evaluate_health_default, validate_prometheus, JobSpec, Json, LocalityPolicy};
use cmpi_osu::collective::{self, CollOp};
use cmpi_osu::{onesided, power_of_two_sizes, pt2pt, ProfileKernel, SizePoint};

fn usage() -> ! {
    eprintln!(
        "usage: osu <latency|bw|bibw|put-lat|put-bw|get-lat|get-bw|bcast|allreduce|allgather|alltoall>\n\
         \x20        [--scenario intra|inter|2hosts|native-intra|native-inter|coll]\n\
         \x20        [--policy def|opt|shm|cma|hca] [--max-size N] [--iters N]\n\
         \x20        [--profile] [--profile-json PATH] [--metrics] [--metrics-json PATH]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let bench = args[0].clone();
    let mut scenario = "intra".to_string();
    let mut policy = "opt".to_string();
    let mut max_size = 1 << 20;
    let mut iters = 20usize;
    let mut profile = false;
    let mut profile_json: Option<String> = None;
    let mut metrics = false;
    let mut metrics_json: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => {
                scenario = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--policy" => {
                policy = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--max-size" => {
                max_size = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--iters" => {
                iters = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--profile" => {
                profile = true;
                i += 1;
            }
            "--profile-json" => {
                profile_json = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--metrics" => {
                metrics = true;
                i += 1;
            }
            "--metrics-json" => {
                metrics_json = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            _ => usage(),
        }
    }

    let sharing = NamespaceSharing::default();
    let dep = match scenario.as_str() {
        "intra" => DeploymentScenario::pt2pt_pair(true, true, sharing),
        "inter" => DeploymentScenario::pt2pt_pair(true, false, sharing),
        "2hosts" => DeploymentScenario::pt2pt_two_hosts(true, sharing),
        "native-intra" => DeploymentScenario::pt2pt_pair(false, true, sharing),
        "native-inter" => DeploymentScenario::pt2pt_pair(false, false, sharing),
        // The paper's collective deployment, scaled to 4 hosts for speed.
        "coll" => DeploymentScenario::collective_256(4),
        _ => usage(),
    };
    let pol = match policy.as_str() {
        "def" => LocalityPolicy::Hostname,
        "opt" => LocalityPolicy::ContainerDetector,
        "shm" => LocalityPolicy::ForceChannel(Channel::Shm),
        "cma" => LocalityPolicy::ForceChannel(Channel::Cma),
        "hca" => LocalityPolicy::ForceChannel(Channel::Hca),
        _ => usage(),
    };
    let spec = JobSpec::new(dep).with_policy(pol);
    let sizes = power_of_two_sizes(max_size);

    let (unit, points): (&str, Vec<SizePoint>) = match bench.as_str() {
        "latency" => ("us", pt2pt::latency(&spec, &sizes, iters)),
        "bw" => (
            "MB/s",
            pt2pt::bandwidth(&spec, &sizes, pt2pt::BW_WINDOW, iters.min(8)),
        ),
        "bibw" => (
            "MB/s",
            pt2pt::bibandwidth(&spec, &sizes, pt2pt::BW_WINDOW, iters.min(8)),
        ),
        "put-lat" => ("us", onesided::put_latency(&spec, &sizes, iters)),
        "put-bw" => (
            "MB/s",
            onesided::put_bandwidth(&spec, &sizes, 64, iters.min(8)),
        ),
        "get-lat" => ("us", onesided::get_latency(&spec, &sizes, iters)),
        "get-bw" => (
            "MB/s",
            onesided::get_bandwidth(&spec, &sizes, 64, iters.min(8)),
        ),
        "bcast" => (
            "us",
            collective::latency(&spec, CollOp::Bcast, &sizes, iters.min(5)),
        ),
        "allreduce" => (
            "us",
            collective::latency(&spec, CollOp::Allreduce, &sizes, iters.min(5)),
        ),
        "allgather" => (
            "us",
            collective::latency(&spec, CollOp::Allgather, &sizes, iters.min(5)),
        ),
        "alltoall" => (
            "us",
            collective::latency(&spec, CollOp::Alltoall, &sizes, iters.min(5)),
        ),
        "barrier" => (
            "us",
            collective::latency(&spec, CollOp::Barrier, &[8], iters.min(5)),
        ),
        "reduce" => (
            "us",
            collective::latency(&spec, CollOp::Reduce, &sizes, iters.min(5)),
        ),
        "gather" => (
            "us",
            collective::latency(&spec, CollOp::Gather, &sizes, iters.min(5)),
        ),
        "scatter" => (
            "us",
            collective::latency(&spec, CollOp::Scatter, &sizes, iters.min(5)),
        ),
        "reduce-scatter" => (
            "us",
            collective::latency(&spec, CollOp::ReduceScatter, &sizes, iters.min(5)),
        ),
        "scan" => (
            "us",
            collective::latency(&spec, CollOp::Scan, &sizes, iters.min(5)),
        ),
        _ => usage(),
    };

    println!("# osu {bench} scenario={scenario} policy={policy}");
    println!("{:>10}  {:>14}", "size", unit);
    for p in points {
        println!("{:>10}  {:>14.2}", p.size, p.value);
    }

    if profile || profile_json.is_some() || metrics || metrics_json.is_some() {
        let op = match bench.as_str() {
            "bcast" => Some(CollOp::Bcast),
            "allreduce" => Some(CollOp::Allreduce),
            "allgather" => Some(CollOp::Allgather),
            "alltoall" => Some(CollOp::Alltoall),
            "barrier" => Some(CollOp::Barrier),
            "reduce" => Some(CollOp::Reduce),
            "gather" => Some(CollOp::Gather),
            "scatter" => Some(CollOp::Scatter),
            "reduce-scatter" => Some(CollOp::ReduceScatter),
            "scan" => Some(CollOp::Scan),
            _ => None,
        };
        let kernel = ProfileKernel::for_bench(&bench, op);
        if profile || profile_json.is_some() {
            let p = cmpi_osu::profiled_run(&spec, kernel, max_size, iters.min(8));
            if profile {
                print!("{}", p.report());
            }
            if let Some(path) = profile_json {
                let doc = p.to_json().to_string();
                Json::parse(&doc).expect("profile JSON must round-trip");
                std::fs::write(&path, doc).expect("write profile json");
                eprintln!("wrote {path}");
            }
        }
        if metrics || metrics_json.is_some() {
            let snap = cmpi_osu::metrics_run(&spec, kernel, max_size, iters.min(8));
            if metrics {
                let prom = snap.to_prometheus();
                let samples =
                    validate_prometheus(&prom).expect("prometheus exposition must validate");
                print!("{prom}");
                let health = evaluate_health_default(&snap);
                println!("# health: {}", health.status.name());
                for f in &health.findings {
                    match f.rank {
                        Some(r) => {
                            println!(
                                "# health[{}] rank {}: {} — {}",
                                f.status.name(),
                                r,
                                f.rule,
                                f.detail
                            )
                        }
                        None => println!(
                            "# health[{}] job: {} — {}",
                            f.status.name(),
                            f.rule,
                            f.detail
                        ),
                    }
                }
                eprintln!("# {samples} samples");
            }
            if let Some(path) = metrics_json {
                let doc = snap.to_json().to_string();
                Json::parse(&doc).expect("metrics JSON must round-trip");
                std::fs::write(&path, doc).expect("write metrics json");
                eprintln!("wrote {path}");
            }
        }
    }
}
