//! Shared benchmark plumbing.

use cmpi_cluster::SimTime;

/// One point of a size-sweep series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizePoint {
    /// Message size in bytes.
    pub size: usize,
    /// Metric value (µs for latency benches, MB/s for bandwidth benches,
    /// messages/s for rate benches).
    pub value: f64,
}

impl SizePoint {
    /// Construct a point.
    pub fn new(size: usize, value: f64) -> Self {
        SizePoint { size, value }
    }
}

/// The OSU default size sweep: 1, 2, 4 … `max` bytes.
pub fn power_of_two_sizes(max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut s = 1usize;
    while s <= max {
        out.push(s);
        s *= 2;
    }
    out
}

/// Latency in µs from a span covering `ops` one-way transfers.
pub fn us_per_op(span: SimTime, ops: u64) -> f64 {
    span.as_us_f64() / ops as f64
}

/// Bandwidth in MB/s from `bytes` moved over `span`.
pub fn mb_per_s(bytes: u64, span: SimTime) -> f64 {
    if span.is_zero() {
        return 0.0;
    }
    // bytes/ns * 1e9 / 1e6 = bytes/ns * 1000.
    bytes as f64 / span.as_ns() as f64 * 1000.0
}

/// Message rate in messages/s.
pub fn msgs_per_s(msgs: u64, span: SimTime) -> f64 {
    if span.is_zero() {
        return 0.0;
    }
    msgs as f64 / span.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_is_powers_of_two() {
        assert_eq!(power_of_two_sizes(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(power_of_two_sizes(20), vec![1, 2, 4, 8, 16]);
        assert_eq!(power_of_two_sizes(1), vec![1]);
    }

    #[test]
    fn metric_conversions() {
        // 1 MB in 1 ms = 1000 MB/s.
        assert!((mb_per_s(1_000_000, SimTime::from_ms(1)) - 1000.0).abs() < 1e-9);
        // 10 ops in 50 us = 5 us/op.
        assert!((us_per_op(SimTime::from_us(50), 10) - 5.0).abs() < 1e-9);
        // 1000 msgs in 1 ms = 1M msg/s.
        assert!((msgs_per_s(1000, SimTime::from_ms(1)) - 1e6).abs() < 1e-3);
        assert_eq!(mb_per_s(1, SimTime::ZERO), 0.0);
    }
}
