//! Two-sided point-to-point benchmarks (`osu_latency`, `osu_bw`,
//! `osu_bibw`, `osu_mbw_mr`).

use bytes::Bytes;
use cmpi_cluster::SimTime;
use cmpi_core::{Completion, JobSpec};

use crate::common::{mb_per_s, msgs_per_s, us_per_op, SizePoint};

/// Default iteration counts (scaled-down OSU defaults; virtual time makes
/// more iterations pointless beyond warming the queues).
pub const LAT_ITERS: usize = 40;
/// Window size of the bandwidth benchmarks (OSU default 64).
pub const BW_WINDOW: usize = 64;
/// Bandwidth repetitions per size.
pub const BW_ITERS: usize = 8;

/// `osu_latency`: ping-pong between ranks 0 and 1; one-way latency in µs
/// per message size.
pub fn latency(spec: &JobSpec, sizes: &[usize], iters: usize) -> Vec<SizePoint> {
    sizes
        .iter()
        .map(|&size| {
            let r = spec.run(move |mpi| {
                let payload = Bytes::from(vec![0u8; size]);
                if mpi.rank() == 0 {
                    // Warm-up exchange so queues exist.
                    mpi.send_bytes(payload.clone(), 1, 0);
                    mpi.recv_bytes(1, 0);
                    let t0 = mpi.now();
                    for _ in 0..iters {
                        mpi.send_bytes(payload.clone(), 1, 1);
                        mpi.recv_bytes(1, 1);
                    }
                    mpi.now() - t0
                } else {
                    let (m, _) = mpi.recv_bytes(0, 0);
                    mpi.send_bytes(m, 0, 0);
                    for _ in 0..iters {
                        let (m, _) = mpi.recv_bytes(0, 1);
                        mpi.send_bytes(m, 0, 1);
                    }
                    SimTime::ZERO
                }
            });
            SizePoint::new(size, us_per_op(r.results[0], 2 * iters as u64))
        })
        .collect()
}

/// `osu_bw`: rank 0 streams windows of messages, rank 1 acks each window;
/// MB/s per message size.
pub fn bandwidth(spec: &JobSpec, sizes: &[usize], window: usize, iters: usize) -> Vec<SizePoint> {
    sizes
        .iter()
        .map(|&size| {
            let r = spec.run(move |mpi| {
                let payload = Bytes::from(vec![0u8; size]);
                if mpi.rank() == 0 {
                    let t0 = mpi.now();
                    for _ in 0..iters {
                        let reqs: Vec<_> = (0..window)
                            .map(|_| mpi.isend_bytes(payload.clone(), 1, 1))
                            .collect();
                        mpi.waitall(reqs);
                        mpi.recv_bytes(1, 2); // window ack
                    }
                    mpi.now() - t0
                } else {
                    for _ in 0..iters {
                        let reqs: Vec<_> = (0..window).map(|_| mpi.irecv_bytes(0, 1)).collect();
                        mpi.waitall(reqs);
                        mpi.send_bytes(Bytes::from_static(&[0u8; 4]), 0, 2);
                    }
                    SimTime::ZERO
                }
            });
            let bytes = (size * window * iters) as u64;
            SizePoint::new(size, mb_per_s(bytes, r.results[0]))
        })
        .collect()
}

/// `osu_bibw`: both ranks stream windows simultaneously; aggregate MB/s.
pub fn bibandwidth(spec: &JobSpec, sizes: &[usize], window: usize, iters: usize) -> Vec<SizePoint> {
    sizes
        .iter()
        .map(|&size| {
            let r = spec.run(move |mpi| {
                let payload = Bytes::from(vec![0u8; size]);
                let peer = 1 - mpi.rank();
                let t0 = mpi.now();
                for _ in 0..iters {
                    let recvs: Vec<_> = (0..window).map(|_| mpi.irecv_bytes(peer, 1)).collect();
                    let sends: Vec<_> = (0..window)
                        .map(|_| mpi.isend_bytes(payload.clone(), peer, 1))
                        .collect();
                    mpi.waitall(recvs);
                    mpi.waitall(sends);
                }
                mpi.now() - t0
            });
            let span = r.results[0].max(r.results[1]);
            let bytes = (2 * size * window * iters) as u64;
            SizePoint::new(size, mb_per_s(bytes, span))
        })
        .collect()
}

/// `osu_mbw_mr`-style message rate: back-to-back non-blocking sends of
/// `size` bytes; messages/s.
pub fn message_rate(spec: &JobSpec, size: usize, window: usize, iters: usize) -> f64 {
    let r = spec.run(move |mpi| {
        let payload = Bytes::from(vec![0u8; size]);
        if mpi.rank() == 0 {
            let t0 = mpi.now();
            for _ in 0..iters {
                let reqs: Vec<_> = (0..window)
                    .map(|_| mpi.isend_bytes(payload.clone(), 1, 1))
                    .collect();
                mpi.waitall(reqs);
                mpi.recv_bytes(1, 2);
            }
            mpi.now() - t0
        } else {
            for _ in 0..iters {
                let mut pending: Vec<_> = (0..window).map(|_| mpi.irecv_bytes(0, 1)).collect();
                // Drain with Test to exercise the polling path too.
                while let Some(req) = pending.pop() {
                    loop {
                        if let Some(Completion::Recv(..)) = mpi.test(&req) {
                            break;
                        }
                    }
                }
                mpi.send_bytes(Bytes::from_static(&[0u8; 4]), 0, 2);
            }
            SimTime::ZERO
        }
    });
    msgs_per_s((window * iters) as u64, r.results[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpi_cluster::{DeploymentScenario, NamespaceSharing};
    use cmpi_core::LocalityPolicy;

    fn opt_pair() -> JobSpec {
        JobSpec::new(DeploymentScenario::pt2pt_pair(
            true,
            true,
            NamespaceSharing::default(),
        ))
    }

    fn def_pair() -> JobSpec {
        opt_pair().with_policy(LocalityPolicy::Hostname)
    }

    #[test]
    fn latency_grows_with_size() {
        let pts = latency(&opt_pair(), &[64, 4096, 65536], 10);
        assert!(pts[0].value < pts[1].value);
        assert!(pts[1].value < pts[2].value);
    }

    #[test]
    fn opt_latency_beats_default() {
        let o = latency(&opt_pair(), &[1024], 10)[0].value;
        let d = latency(&def_pair(), &[1024], 10)[0].value;
        assert!(d > 2.0 * o, "def {d} opt {o}");
    }

    #[test]
    fn bandwidth_saturates_higher_for_opt() {
        let o = bandwidth(&opt_pair(), &[262_144], 16, 2)[0].value;
        let d = bandwidth(&def_pair(), &[262_144], 16, 2)[0].value;
        assert!(o > d, "opt {o} MB/s vs def {d} MB/s");
        // Opt large-message bandwidth should be in single-copy territory
        // (thousands of MB/s), default capped by the loopback (~3 GB/s).
        assert!(o > 4000.0, "opt bw {o}");
        assert!(d < 3500.0, "def bw {d}");
    }

    #[test]
    fn bibw_exceeds_unidirectional() {
        let uni = bandwidth(&opt_pair(), &[65536], 16, 2)[0].value;
        let bi = bibandwidth(&opt_pair(), &[65536], 16, 2)[0].value;
        assert!(bi > uni, "bi {bi} uni {uni}");
    }

    #[test]
    fn message_rate_is_sane_for_both_policies() {
        // Windowed small-message rate is posting-overhead bound on every
        // channel and, unlike latency/bandwidth, is sensitive to how
        // window completions interleave with the ack round — run-to-run
        // it moves within a small-integer factor on both policies (a
        // documented limitation of the windowed-rate harness; the paper
        // makes no message-rate claim). Assert the well-defined
        // invariants: rates exist and sit in a physically sane envelope.
        for size in [8usize, 4096] {
            let o = message_rate(&opt_pair(), size, 32, 2);
            let d = message_rate(&def_pair(), size, 32, 2);
            for (name, r) in [("opt", o), ("def", d)] {
                assert!(
                    (5e4..5e7).contains(&r),
                    "{name} rate {r} msg/s at {size} B outside the sane envelope"
                );
            }
        }
    }
}
