//! # cmpi-osu — micro-benchmark suite
//!
//! Faithful re-implementations of the OSU micro-benchmarks the paper uses
//! (OSU micro-benchmarks v5.0 on MVAPICH2-2.2b), measuring *virtual* time
//! on the simulated cluster:
//!
//! * [`pt2pt`] — `osu_latency`, `osu_bw`, `osu_bibw`, `osu_mbw_mr`
//!   (Figs. 3(b)(c), 7, 8);
//! * [`onesided`] — `osu_put_lat`, `osu_put_bw`, `osu_get_lat`,
//!   `osu_get_bw` (Fig. 9);
//! * [`collective`] — `osu_bcast`, `osu_allreduce`, `osu_allgather`,
//!   `osu_alltoall` (Fig. 10).
//!
//! Every benchmark takes a fully configured [`cmpi_core::JobSpec`], so the
//! same code measures Native, Cont-Def, Cont-Opt and forced-channel
//! configurations.

#![forbid(unsafe_code)]
pub mod collective;
pub mod common;
pub mod onesided;
pub mod profile;
pub mod pt2pt;

pub use common::{power_of_two_sizes, SizePoint};
pub use profile::{metrics_run, profiled_run, ProfileKernel};
