//! Collective benchmarks (`osu_bcast`, `osu_allreduce`, `osu_allgather`,
//! `osu_alltoall`) — Fig. 10.

use cmpi_cluster::SimTime;
use cmpi_core::{JobSpec, ReduceOp};

use crate::common::{us_per_op, SizePoint};

/// Which collective a benchmark drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollOp {
    /// `MPI_Bcast` from rank 0.
    Bcast,
    /// `MPI_Allreduce` (sum).
    Allreduce,
    /// `MPI_Allgather`.
    Allgather,
    /// `MPI_Alltoall`.
    Alltoall,
    /// Two-level broadcast (ablation).
    BcastSmp,
    /// Two-level allreduce (ablation).
    AllreduceSmp,
    /// Two-level barrier (ablation; size column is ignored).
    BarrierSmp,
    /// Two-level reduce to rank 0 (ablation).
    ReduceSmp,
    /// Two-level gather to rank 0 (ablation).
    GatherSmp,
    /// Two-level allgather (ablation).
    AllgatherSmp,
    /// Two-level alltoall (ablation).
    AlltoallSmp,
    /// `MPI_Barrier` (size column is ignored).
    Barrier,
    /// `MPI_Reduce` to rank 0.
    Reduce,
    /// `MPI_Gather` to rank 0.
    Gather,
    /// `MPI_Scatter` from rank 0.
    Scatter,
    /// `MPI_Reduce_scatter_block`.
    ReduceScatter,
    /// `MPI_Scan` (inclusive prefix sum).
    Scan,
    /// Allreduce with size-based algorithm selection (Rabenseifner for
    /// large vectors).
    AllreduceTuned,
    /// Broadcast with size-based algorithm selection (scatter-allgather
    /// for large vectors).
    BcastTuned,
}

impl CollOp {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CollOp::Bcast => "bcast",
            CollOp::Allreduce => "allreduce",
            CollOp::Allgather => "allgather",
            CollOp::Alltoall => "alltoall",
            CollOp::BcastSmp => "bcast-smp",
            CollOp::AllreduceSmp => "allreduce-smp",
            CollOp::BarrierSmp => "barrier-smp",
            CollOp::ReduceSmp => "reduce-smp",
            CollOp::GatherSmp => "gather-smp",
            CollOp::AllgatherSmp => "allgather-smp",
            CollOp::AlltoallSmp => "alltoall-smp",
            CollOp::Barrier => "barrier",
            CollOp::Reduce => "reduce",
            CollOp::Gather => "gather",
            CollOp::Scatter => "scatter",
            CollOp::ReduceScatter => "reduce-scatter",
            CollOp::Scan => "scan",
            CollOp::AllreduceTuned => "allreduce-tuned",
            CollOp::BcastTuned => "bcast-tuned",
        }
    }
}

/// OSU collective latency: average per-rank time per operation, µs.
///
/// `size` is the per-rank message size in bytes (matching OSU semantics:
/// for allgather/alltoall it is the contribution per rank).
pub fn latency(spec: &JobSpec, op: CollOp, sizes: &[usize], iters: usize) -> Vec<SizePoint> {
    sizes
        .iter()
        .map(|&size| {
            let r = spec.run(move |mpi| {
                let n = mpi.size();
                let elems = (size / 8).max(1);
                let mine = vec![mpi.rank() as u64; elems];
                // Warm up once (builds queues/windows).
                run_op(mpi, op, &mine, elems, n);
                mpi.barrier();
                let t0 = mpi.now();
                for _ in 0..iters {
                    run_op(mpi, op, &mine, elems, n);
                }
                mpi.now() - t0
            });
            let avg_ns: f64 =
                r.results.iter().map(|t| t.as_ns() as f64).sum::<f64>() / r.results.len() as f64;
            SizePoint::new(
                size,
                us_per_op(SimTime::from_ns(avg_ns as u64), iters as u64),
            )
        })
        .collect()
}

pub(crate) fn run_op(mpi: &mut cmpi_core::Mpi, op: CollOp, mine: &[u64], elems: usize, n: usize) {
    match op {
        CollOp::Bcast => {
            let mut buf = mine.to_vec();
            mpi.bcast(&mut buf, 0);
        }
        CollOp::Allreduce => {
            mpi.allreduce(mine, ReduceOp::Sum);
        }
        CollOp::Allgather => {
            mpi.allgather(mine);
        }
        CollOp::Alltoall => {
            let data = vec![0u64; elems * n];
            mpi.alltoall(&data, elems);
        }
        CollOp::BcastSmp => {
            let mut buf = mine.to_vec();
            mpi.bcast_smp(&mut buf, 0);
        }
        CollOp::AllreduceSmp => {
            mpi.allreduce_smp(mine, ReduceOp::Sum);
        }
        CollOp::BarrierSmp => {
            mpi.barrier_smp();
        }
        CollOp::ReduceSmp => {
            mpi.reduce_smp(mine, ReduceOp::Sum, 0);
        }
        CollOp::GatherSmp => {
            mpi.gather_smp(mine, 0);
        }
        CollOp::AllgatherSmp => {
            mpi.allgather_smp(mine);
        }
        CollOp::AlltoallSmp => {
            let data = vec![0u64; elems * n];
            mpi.alltoall_smp(&data, elems);
        }
        CollOp::Barrier => {
            mpi.barrier();
        }
        CollOp::Reduce => {
            mpi.reduce(mine, ReduceOp::Sum, 0);
        }
        CollOp::Gather => {
            mpi.gather(mine, 0);
        }
        CollOp::Scatter => {
            let data: Option<Vec<u64>> = (mpi.rank() == 0).then(|| vec![0u64; elems * n]);
            mpi.scatter(data.as_deref(), elems, 0);
        }
        CollOp::ReduceScatter => {
            let data = vec![1u64; elems * n];
            mpi.reduce_scatter_block(&data, elems, ReduceOp::Sum);
        }
        CollOp::Scan => {
            mpi.scan(mine, ReduceOp::Sum);
        }
        CollOp::AllreduceTuned => {
            mpi.allreduce_tuned(mine, ReduceOp::Sum);
        }
        CollOp::BcastTuned => {
            let mut buf = mine.to_vec();
            mpi.bcast_tuned(&mut buf, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpi_cluster::{DeploymentScenario, NamespaceSharing};
    use cmpi_core::LocalityPolicy;

    /// 16 ranks: 4 containers x 4 ranks on one host (scaled-down V-C
    /// deployment).
    fn spec(policy: LocalityPolicy) -> JobSpec {
        JobSpec::new(DeploymentScenario::containers(
            1,
            4,
            4,
            NamespaceSharing::default(),
        ))
        .with_policy(policy)
    }

    #[test]
    fn collectives_opt_beats_default() {
        for op in [
            CollOp::Bcast,
            CollOp::Allreduce,
            CollOp::Allgather,
            CollOp::Alltoall,
        ] {
            let o = latency(&spec(LocalityPolicy::ContainerDetector), op, &[1024], 3)[0].value;
            let d = latency(&spec(LocalityPolicy::Hostname), op, &[1024], 3)[0].value;
            assert!(d > o, "{}: def {d}us opt {o}us", op.name());
        }
    }

    #[test]
    fn latency_grows_with_size() {
        let pts = latency(
            &spec(LocalityPolicy::ContainerDetector),
            CollOp::Allreduce,
            &[64, 16384],
            3,
        );
        assert!(pts[0].value < pts[1].value);
    }

    #[test]
    fn extended_ops_run_and_scale() {
        let s = spec(LocalityPolicy::ContainerDetector);
        for op in [
            CollOp::Barrier,
            CollOp::Reduce,
            CollOp::Gather,
            CollOp::Scatter,
            CollOp::ReduceScatter,
            CollOp::Scan,
        ] {
            let pts = latency(&s, op, &[256], 2);
            assert!(pts[0].value > 0.0, "{}", op.name());
        }
    }

    #[test]
    fn smp_variants_run() {
        for op in [
            CollOp::BcastSmp,
            CollOp::AllreduceSmp,
            CollOp::BarrierSmp,
            CollOp::ReduceSmp,
            CollOp::GatherSmp,
            CollOp::AllgatherSmp,
            CollOp::AlltoallSmp,
        ] {
            let pts = latency(&spec(LocalityPolicy::ContainerDetector), op, &[256], 2);
            assert!(pts[0].value > 0.0, "{}", op.name());
        }
    }
}
