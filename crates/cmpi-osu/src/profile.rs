//! Profiled single runs backing the `osu --profile` flags.
//!
//! The sweep helpers in [`crate::pt2pt`]/[`crate::onesided`]/
//! [`crate::collective`] measure virtual time only and discard everything
//! else. When the user asks for a profile, the driver re-runs the
//! benchmark's kernel once — at a single size, with the causal profiler
//! on — and hands back the assembled [`JobProfile`]: the per-peer channel
//! matrix, the wait-state decomposition, and the substrate pressure
//! counters for exactly the communication pattern that was measured.

use bytes::Bytes;
use cmpi_cluster::SimTime;
use cmpi_core::{JobProfile, JobSpec, Mpi, TelemetrySnapshot};

use crate::collective::{run_op, CollOp};

/// Which communication kernel a profiled run drives.
#[derive(Clone, Copy, Debug)]
pub enum ProfileKernel {
    /// Two-sided ping-pong between ranks 0 and 1 (latency/bw benches).
    PingPong,
    /// One-sided put + flush rounds from rank 0 into rank 1's window.
    PutFlush,
    /// One collective per iteration across all ranks.
    Collective(CollOp),
}

impl ProfileKernel {
    /// The kernel that matches a bench name from the CLI.
    pub fn for_bench(bench: &str, op: Option<CollOp>) -> ProfileKernel {
        match (bench, op) {
            (_, Some(op)) => ProfileKernel::Collective(op),
            ("put-lat" | "put-bw" | "get-lat" | "get-bw", _) => ProfileKernel::PutFlush,
            _ => ProfileKernel::PingPong,
        }
    }
}

/// One rank's worth of the chosen kernel (shared between the profiled
/// and the telemetry-snapshot runs so both measure the same pattern).
fn run_kernel(mpi: &mut Mpi, kernel: ProfileKernel, size: usize, iters: usize) -> SimTime {
    match kernel {
        ProfileKernel::PingPong => {
            let payload = Bytes::from(vec![0u8; size]);
            if mpi.rank() == 0 {
                for _ in 0..iters {
                    mpi.send_bytes(payload.clone(), 1, 1);
                    mpi.recv_bytes(1, 1);
                }
            } else if mpi.rank() == 1 {
                for _ in 0..iters {
                    let (m, _) = mpi.recv_bytes(0, 1);
                    mpi.send_bytes(m, 0, 1);
                }
            }
            SimTime::ZERO
        }
        ProfileKernel::PutFlush => {
            let mut win = mpi.win_allocate(size.max(8));
            mpi.fence(&mut win);
            if mpi.rank() == 0 {
                let data = vec![0u8; size];
                for _ in 0..iters {
                    mpi.put(&mut win, 1, 0, &data);
                    mpi.flush(&mut win, 1);
                }
            }
            mpi.fence(&mut win);
            SimTime::ZERO
        }
        ProfileKernel::Collective(op) => {
            let n = mpi.size();
            let elems = (size / 8).max(1);
            let mine = vec![mpi.rank() as u64; elems];
            for _ in 0..iters {
                run_op(mpi, op, &mine, elems, n);
            }
            SimTime::ZERO
        }
    }
}

/// Run `kernel` at `size` bytes for `iters` iterations with the causal
/// profiler enabled; returns the assembled job profile.
pub fn profiled_run(
    spec: &JobSpec,
    kernel: ProfileKernel,
    size: usize,
    iters: usize,
) -> JobProfile {
    let spec = spec.clone().with_profiling();
    let r = spec.run(move |mpi| run_kernel(mpi, kernel, size, iters));
    r.profile.expect("profiling was enabled on the spec")
}

/// Run `kernel` once and return the always-on telemetry snapshot
/// (metric registry + flight rings) for exactly that communication
/// pattern — what `osu --metrics` prints.
pub fn metrics_run(
    spec: &JobSpec,
    kernel: ProfileKernel,
    size: usize,
    iters: usize,
) -> TelemetrySnapshot {
    let mut spec = spec.clone();
    spec.telemetry = true;
    let r = spec.run(move |mpi| run_kernel(mpi, kernel, size, iters));
    r.telemetry.expect("telemetry was enabled on the spec")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpi_cluster::{Channel, DeploymentScenario, NamespaceSharing};
    use cmpi_core::{LocalityPolicy, WaitClass};

    fn pair(opt: bool) -> JobSpec {
        let spec = JobSpec::new(DeploymentScenario::pt2pt_pair(
            true,
            true,
            NamespaceSharing::default(),
        ));
        if opt {
            spec
        } else {
            spec.with_policy(LocalityPolicy::Hostname)
        }
    }

    #[test]
    fn pingpong_profile_is_conserved_and_channel_correct() {
        let p = profiled_run(&pair(true), ProfileKernel::PingPong, 4096, 4);
        assert_eq!(p.conservation_error(), 0);
        assert!(p.directionally_conserved());
        // Locality-aware routing keeps the intra-host pair off the HCA.
        assert_eq!(p.pair_channel_bytes(0, 1, Channel::Hca), 0);
        assert!(p.pair_bytes(0, 1) >= 4 * 4096);
        let d = profiled_run(&pair(false), ProfileKernel::PingPong, 4096, 4);
        assert!(d.pair_channel_bytes(0, 1, Channel::Hca) >= 4 * 4096);
    }

    #[test]
    fn put_flush_profile_records_onesided_waits() {
        let p = profiled_run(&pair(true), ProfileKernel::PutFlush, 65536, 3);
        assert_eq!(p.conservation_error(), 0);
        assert!(p.wait_total(WaitClass::OneSided).samples > 0);
        assert!(p.pair_bytes(0, 1) >= 3 * 65536);
    }

    #[test]
    fn collective_profile_touches_every_rank() {
        let spec = JobSpec::new(DeploymentScenario::collective_256(4));
        let p = profiled_run(&spec, ProfileKernel::Collective(CollOp::Allreduce), 1024, 2);
        assert_eq!(p.conservation_error(), 0);
        assert!(p.wait_total(WaitClass::Collective).samples > 0);
        // Every rank moved bytes somewhere.
        for r in 0..p.num_ranks() {
            assert!(
                (0..p.num_ranks()).any(|j| p.pair_bytes(r, j) > 0),
                "rank {r}"
            );
        }
    }
}
