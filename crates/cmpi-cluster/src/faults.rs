//! Fault-injection plans — the substrate behind the chaos suite.
//!
//! A [`FaultPlan`] describes, *declaratively and deterministically*, which
//! partial failures a job must survive. It is configured per
//! [`DeploymentScenario`](crate::DeploymentScenario) and threaded through
//! the shared-memory layer (stale / corrupt / torn container-list
//! segments), the locality detector (omitted publishes, revoked
//! namespaces) and the fabric (QP-creation failures, transient send
//! completion errors). The layers *consume* the plan; this module only
//! answers pure queries, so the same plan always injects the same faults
//! — the chaos tests assert bit-identical results across runs.
//!
//! The fault classes model the container-cloud failure modes reported for
//! Docker HPC deployments (crashed jobs leaving `/dev/shm` litter,
//! per-container namespace isolation, device unavailability) that the
//! paper's locality protocol implicitly assumes away.

use std::collections::{BTreeMap, BTreeSet};

use crate::scenario::DeploymentScenario;
use crate::topology::{Container, ContainerId, HostId, NamespaceId};

/// Offset added to a container id to mint the private namespace a revoked
/// container is deemed to have been restarted into. High enough to never
/// collide with [`Cluster::fresh_namespace`](crate::Cluster) allocations.
const REVOKED_NS_BASE: u32 = 0x8000_0000;

/// The stale generation number a leftover segment carries. Any value
/// different from the running job's generation works; a recognizable
/// constant makes failures readable.
pub const STALE_GENERATION: u64 = 0xdead;

/// When a mid-run fault fires, expressed in quantities that are pure
/// functions of the faulted rank's own deterministic execution (virtual
/// clock, MPI-call count) — never wall clock — so the fault lands at the
/// same point of the same call sequence in every run.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum MidRunTrigger {
    /// Fire at the first MPI-call boundary at or after this virtual time
    /// (nanoseconds on the rank's own clock).
    AtTime(u64),
    /// Fire on the rank's `n`-th MPI call (calls count from 1).
    AfterOps(u64),
}

impl MidRunTrigger {
    /// Has the trigger fired for a rank at virtual time `now_ns` that has
    /// entered `ops` MPI calls so far?
    pub fn fires(&self, now_ns: u64, ops: u64) -> bool {
        match *self {
            MidRunTrigger::AtTime(t) => now_ns >= t,
            MidRunTrigger::AfterOps(k) => ops >= k,
        }
    }
}

/// The mid-run fault classes a rank can suffer while the job is running
/// (as opposed to the init-time classes above).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum MidRunFault {
    /// The rank's process dies: queues close, its endpoint detaches, and
    /// peers eventually convict it through the failure detector.
    Crash,
    /// The rank's whole container is killed: every rank placed in it
    /// shares the trigger and dies at its own next call boundary past it.
    ContainerKill,
    /// The rank wedges: it stops calling progress (no more heartbeats, no
    /// more sends) but its process stays attached, so only lease expiry —
    /// never a transport error — reveals it.
    Hang,
}

/// A deterministic, declarative fault-injection plan.
///
/// All sets are keyed by stable identifiers (host ids, container ids,
/// global ranks), never by wall-clock or thread arrival order, so two
/// runs of the same plan inject exactly the same faults.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Seed that derived this plan (recorded for reporting; sampling
    /// happened in [`FaultPlan::sampled`]).
    pub seed: u64,
    /// Hosts whose container-list segment is a leftover from a previous
    /// job: valid checksum, wrong generation. Recovery: re-initialize.
    pub stale_list_hosts: BTreeSet<u32>,
    /// Hosts whose container-list segment is corrupt (bad checksum /
    /// garbage bytes). Recovery: re-initialize.
    pub corrupt_list_hosts: BTreeSet<u32>,
    /// Global ranks that never publish their membership byte before the
    /// init barrier (modeling a rank wedged in container startup).
    /// Recovery: peers retry with backoff, then downgrade the silent rank
    /// to the HCA channel.
    pub omit_publish_ranks: BTreeSet<usize>,
    /// Global ranks whose membership byte is torn: a value from the valid
    /// range but the *wrong* container's byte. Recovery: scan cross-checks
    /// against placement ground truth and downgrades.
    pub torn_publish_ranks: BTreeSet<usize>,
    /// Duplicate publishes: rank → slot of a *different* rank it also
    /// claims (two ranks claiming one slot). Surfaces as `CorruptList`
    /// from the CAS publish; the rightful owner re-asserts its byte.
    pub duplicate_publish: BTreeMap<usize, usize>,
    /// Containers whose IPC-namespace sharing was revoked after placement
    /// (restarted without `--ipc=host`): SHM impossible, co-residency
    /// still real.
    pub revoked_ipc_containers: BTreeSet<u32>,
    /// Containers whose PID-namespace sharing was revoked (restarted
    /// without `--pid=host`): CMA impossible.
    pub revoked_pid_containers: BTreeSet<u32>,
    /// Ranks whose first `n` fabric attach (QP creation) attempts fail
    /// transiently. Recovery: bounded retry with virtual-time backoff.
    pub qp_attach_failures: BTreeMap<usize, u32>,
    /// Every `period`-th fabric send posted by a rank completes in error
    /// (0 = never). Recovery: bounded retry with virtual-time backoff.
    pub send_fault_period: u64,
    /// How many consecutive completion errors each faulted send suffers
    /// before succeeding; must stay below the transport retry budget for
    /// the job to survive.
    pub send_fault_repeats: u32,
    /// Ranks that crash mid-run at the given trigger. Recovery: peers
    /// convict through the failure detector, revoke, and shrink.
    pub crash_ranks: BTreeMap<usize, MidRunTrigger>,
    /// Ranks that hang mid-run (stop progressing, stay attached).
    pub hang_ranks: BTreeMap<usize, MidRunTrigger>,
    /// Containers killed mid-run: every rank placed in the container
    /// shares the trigger and dies at its own next call boundary past it
    /// (the kill is external; each rank observes it independently).
    pub kill_containers: BTreeMap<u32, MidRunTrigger>,
}

/// splitmix64 — the repo-standard deterministic hash for derived seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic per-(seed, domain, key) coin.
fn coin(seed: u64, domain: u64, key: u64, p_percent: u64) -> bool {
    splitmix64(seed ^ domain.wrapping_mul(0xa076_1d64_78bd_642f) ^ key) % 100 < p_percent
}

impl FaultPlan {
    /// The empty plan: no faults. Equivalent to not configuring one.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self
            == FaultPlan {
                seed: self.seed,
                ..FaultPlan::default()
            }
    }

    /// Sample a mixed plan from `seed` for `scenario`: each fault class
    /// fires with moderate probability over the scenario's hosts, ranks
    /// and containers. Used by the chaos suite's "everything at once"
    /// runs; identical `(seed, scenario)` always yields identical plans.
    pub fn sampled(seed: u64, scenario: &DeploymentScenario) -> Self {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        let ranks = scenario.num_ranks();
        for h in 0..scenario.cluster.num_hosts() as u64 {
            if coin(seed, 1, h, 25) {
                plan.stale_list_hosts.insert(h as u32);
            } else if coin(seed, 2, h, 25) {
                plan.corrupt_list_hosts.insert(h as u32);
            }
        }
        for r in 0..ranks as u64 {
            // Keep publish faults sparse: at most one rank in ~8 stays
            // silent so the degraded view still finds locality to use.
            if coin(seed, 3, r, 12) {
                plan.omit_publish_ranks.insert(r as usize);
            } else if coin(seed, 4, r, 12) {
                plan.torn_publish_ranks.insert(r as usize);
            }
        }
        for c in &scenario.cluster.containers {
            if c.native {
                continue;
            }
            if coin(seed, 5, c.id.0 as u64, 15) {
                plan.revoked_ipc_containers.insert(c.id.0);
            }
            if coin(seed, 6, c.id.0 as u64, 15) {
                plan.revoked_pid_containers.insert(c.id.0);
            }
        }
        for r in 0..ranks as u64 {
            if coin(seed, 7, r, 20) {
                plan.qp_attach_failures
                    .insert(r as usize, 1 + (splitmix64(seed ^ r) % 2) as u32);
            }
        }
        if coin(seed, 8, 0, 50) {
            plan.send_fault_period = 16 + splitmix64(seed ^ 0x5e17) % 48;
            plan.send_fault_repeats = 1 + (splitmix64(seed ^ 0x9ad) % 2) as u32;
        }
        plan
    }

    // ---- builders ------------------------------------------------------

    /// Leave a stale (previous-generation) container list on `host`.
    pub fn with_stale_list(mut self, host: HostId) -> Self {
        self.stale_list_hosts.insert(host.0);
        self
    }

    /// Leave a corrupt (bad checksum) container list on `host`.
    pub fn with_corrupt_list(mut self, host: HostId) -> Self {
        self.corrupt_list_hosts.insert(host.0);
        self
    }

    /// Make `rank` never publish its membership byte.
    pub fn with_omitted_publish(mut self, rank: usize) -> Self {
        self.omit_publish_ranks.insert(rank);
        self
    }

    /// Make `rank` publish a torn (wrong-container) membership byte.
    pub fn with_torn_publish(mut self, rank: usize) -> Self {
        self.torn_publish_ranks.insert(rank);
        self
    }

    /// Make `rank` also claim `victim_rank`'s slot (double publish).
    pub fn with_duplicate_publish(mut self, rank: usize, victim_rank: usize) -> Self {
        self.duplicate_publish.insert(rank, victim_rank);
        self
    }

    /// Revoke IPC-namespace sharing for `container`.
    pub fn with_revoked_ipc(mut self, container: ContainerId) -> Self {
        self.revoked_ipc_containers.insert(container.0);
        self
    }

    /// Revoke PID-namespace sharing for `container`.
    pub fn with_revoked_pid(mut self, container: ContainerId) -> Self {
        self.revoked_pid_containers.insert(container.0);
        self
    }

    /// Fail `rank`'s first `attempts` QP-creation attempts.
    pub fn with_qp_attach_failures(mut self, rank: usize, attempts: u32) -> Self {
        self.qp_attach_failures.insert(rank, attempts);
        self
    }

    /// Fail every `period`-th posted send with `repeats` consecutive
    /// completion errors before it goes through.
    pub fn with_send_faults(mut self, period: u64, repeats: u32) -> Self {
        self.send_fault_period = period;
        self.send_fault_repeats = repeats;
        self
    }

    /// Crash `rank` mid-run when `trigger` fires.
    pub fn with_crash(mut self, rank: usize, trigger: MidRunTrigger) -> Self {
        self.crash_ranks.insert(rank, trigger);
        self
    }

    /// Hang `rank` mid-run when `trigger` fires.
    pub fn with_hang(mut self, rank: usize, trigger: MidRunTrigger) -> Self {
        self.hang_ranks.insert(rank, trigger);
        self
    }

    /// Kill every rank in `container`: each dies at its own first call
    /// boundary past `trigger`.
    pub fn with_container_kill(mut self, container: ContainerId, trigger: MidRunTrigger) -> Self {
        self.kill_containers.insert(container.0, trigger);
        self
    }

    // ---- queries -------------------------------------------------------

    /// Does `host` start with a stale leftover container list?
    pub fn list_is_stale(&self, host: HostId) -> bool {
        self.stale_list_hosts.contains(&host.0)
    }

    /// Does `host` start with a corrupt container list?
    pub fn list_is_corrupt(&self, host: HostId) -> bool {
        self.corrupt_list_hosts.contains(&host.0)
    }

    /// Does `rank` stay silent instead of publishing?
    pub fn publish_omitted(&self, rank: usize) -> bool {
        self.omit_publish_ranks.contains(&rank)
    }

    /// Does `rank` publish a torn byte?
    pub fn publish_torn(&self, rank: usize) -> bool {
        self.torn_publish_ranks.contains(&rank)
    }

    /// The slot `rank` wrongly claims in addition to its own, if any.
    pub fn duplicate_claim_of(&self, rank: usize) -> Option<usize> {
        self.duplicate_publish.get(&rank).copied()
    }

    /// Is `container`'s IPC sharing revoked?
    pub fn ipc_revoked(&self, container: ContainerId) -> bool {
        self.revoked_ipc_containers.contains(&container.0)
    }

    /// Is `container`'s PID sharing revoked?
    pub fn pid_revoked(&self, container: ContainerId) -> bool {
        self.revoked_pid_containers.contains(&container.0)
    }

    /// How many of `rank`'s leading attach attempts fail.
    pub fn attach_failures(&self, rank: usize) -> u32 {
        self.qp_attach_failures.get(&rank).copied().unwrap_or(0)
    }

    /// Whether the `op_index`-th send posted by a rank completes in error
    /// on its `attempt`-th try (attempts count from 0).
    pub fn send_fails(&self, op_index: u64, attempt: u32) -> bool {
        self.send_fault_period != 0
            && op_index % self.send_fault_period == self.send_fault_period - 1
            && attempt < self.send_fault_repeats
    }

    /// The mid-run fate of a rank placed in `container`, if the plan
    /// schedules one: the fault class and its trigger. When several
    /// classes name the same rank, the most severe wins (crash, then
    /// container kill, then hang) — plans normally schedule only one.
    pub fn midrun_fate_of(
        &self,
        rank: usize,
        container: ContainerId,
    ) -> Option<(MidRunFault, MidRunTrigger)> {
        if let Some(&t) = self.crash_ranks.get(&rank) {
            return Some((MidRunFault::Crash, t));
        }
        if let Some(&t) = self.kill_containers.get(&container.0) {
            return Some((MidRunFault::ContainerKill, t));
        }
        self.hang_ranks.get(&rank).map(|&t| (MidRunFault::Hang, t))
    }

    /// Does the plan schedule any mid-run fault at all?
    pub fn has_midrun_faults(&self) -> bool {
        !self.crash_ranks.is_empty()
            || !self.hang_ranks.is_empty()
            || !self.kill_containers.is_empty()
    }

    /// The IPC namespace `container` effectively lives in once the plan's
    /// revocations apply: its placed namespace normally, or a fresh
    /// private one if revoked.
    pub fn effective_ipc_ns(&self, container: &Container) -> NamespaceId {
        if self.ipc_revoked(container.id) {
            NamespaceId(REVOKED_NS_BASE + container.id.0)
        } else {
            container.ipc_ns
        }
    }

    /// The PID namespace `container` effectively lives in (see
    /// [`FaultPlan::effective_ipc_ns`]).
    pub fn effective_pid_ns(&self, container: &Container) -> NamespaceId {
        if self.pid_revoked(container.id) {
            NamespaceId(REVOKED_NS_BASE + container.id.0)
        } else {
            container.pid_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NamespaceSharing;

    #[test]
    fn sampling_is_deterministic() {
        let s = DeploymentScenario::containers(2, 2, 2, NamespaceSharing::default());
        let a = FaultPlan::sampled(42, &s);
        let b = FaultPlan::sampled(42, &s);
        assert_eq!(a, b);
        let c = FaultPlan::sampled(43, &s);
        assert_ne!(a, c, "different seeds should (generically) differ");
    }

    #[test]
    fn builders_round_trip_through_queries() {
        let p = FaultPlan::none()
            .with_stale_list(HostId(0))
            .with_corrupt_list(HostId(1))
            .with_omitted_publish(3)
            .with_torn_publish(4)
            .with_duplicate_publish(5, 6)
            .with_revoked_ipc(ContainerId(1))
            .with_revoked_pid(ContainerId(2))
            .with_qp_attach_failures(0, 2)
            .with_send_faults(8, 1);
        assert!(p.list_is_stale(HostId(0)) && !p.list_is_stale(HostId(1)));
        assert!(p.list_is_corrupt(HostId(1)) && !p.list_is_corrupt(HostId(0)));
        assert!(p.publish_omitted(3) && !p.publish_omitted(4));
        assert!(p.publish_torn(4) && !p.publish_torn(3));
        assert_eq!(p.duplicate_claim_of(5), Some(6));
        assert_eq!(p.duplicate_claim_of(6), None);
        assert!(p.ipc_revoked(ContainerId(1)) && !p.ipc_revoked(ContainerId(2)));
        assert!(p.pid_revoked(ContainerId(2)) && !p.pid_revoked(ContainerId(1)));
        assert_eq!(p.attach_failures(0), 2);
        assert_eq!(p.attach_failures(1), 0);
        assert!(!p.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn midrun_fates_resolve_by_rank_and_container() {
        let p = FaultPlan::none()
            .with_crash(3, MidRunTrigger::AfterOps(100))
            .with_hang(4, MidRunTrigger::AtTime(5_000))
            .with_container_kill(ContainerId(2), MidRunTrigger::AtTime(9_000));
        assert!(!p.is_empty() && p.has_midrun_faults());
        assert_eq!(
            p.midrun_fate_of(3, ContainerId(0)),
            Some((MidRunFault::Crash, MidRunTrigger::AfterOps(100)))
        );
        assert_eq!(
            p.midrun_fate_of(4, ContainerId(0)),
            Some((MidRunFault::Hang, MidRunTrigger::AtTime(5_000)))
        );
        // Any rank in the killed container inherits the container's fate.
        assert_eq!(
            p.midrun_fate_of(9, ContainerId(2)),
            Some((MidRunFault::ContainerKill, MidRunTrigger::AtTime(9_000)))
        );
        // Crash outranks the container kill for a doubly-faulted rank.
        assert_eq!(
            p.midrun_fate_of(3, ContainerId(2)).unwrap().0,
            MidRunFault::Crash
        );
        assert_eq!(p.midrun_fate_of(0, ContainerId(0)), None);
        assert!(!FaultPlan::none().has_midrun_faults());
        // Trigger semantics: ops count from 1, time is >=.
        assert!(MidRunTrigger::AfterOps(2).fires(0, 2));
        assert!(!MidRunTrigger::AfterOps(2).fires(u64::MAX, 1));
        assert!(MidRunTrigger::AtTime(10).fires(10, 0));
        assert!(!MidRunTrigger::AtTime(10).fires(9, u64::MAX));
    }

    #[test]
    fn send_fault_schedule_is_periodic_and_bounded() {
        let p = FaultPlan::none().with_send_faults(4, 2);
        // Ops 3, 7, 11, ... fail on attempts 0 and 1, succeed from 2.
        assert!(p.send_fails(3, 0) && p.send_fails(3, 1) && !p.send_fails(3, 2));
        assert!(!p.send_fails(0, 0) && !p.send_fails(2, 0) && p.send_fails(7, 0));
        assert!(!FaultPlan::none().send_fails(3, 0), "period 0 = never");
    }

    #[test]
    fn revoked_namespaces_are_private_and_stable() {
        let s = DeploymentScenario::containers(1, 2, 2, NamespaceSharing::default());
        let a = s.cluster.container(ContainerId(0)).clone();
        let b = s.cluster.container(ContainerId(1)).clone();
        let p = FaultPlan::none().with_revoked_ipc(ContainerId(1));
        assert_eq!(p.effective_ipc_ns(&a), a.ipc_ns);
        assert_ne!(p.effective_ipc_ns(&b), b.ipc_ns);
        assert_ne!(p.effective_ipc_ns(&b), p.effective_ipc_ns(&a));
        // Stable across calls (the downgrade decision must not flap).
        assert_eq!(p.effective_ipc_ns(&b), p.effective_ipc_ns(&b));
        // PID untouched by an IPC revocation.
        assert_eq!(p.effective_pid_ns(&b), b.pid_ns);
    }
}
