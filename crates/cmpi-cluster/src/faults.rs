//! Fault-injection plans — the substrate behind the chaos suite.
//!
//! A [`FaultPlan`] describes, *declaratively and deterministically*, which
//! partial failures a job must survive. It is configured per
//! [`DeploymentScenario`](crate::DeploymentScenario) and threaded through
//! the shared-memory layer (stale / corrupt / torn container-list
//! segments), the locality detector (omitted publishes, revoked
//! namespaces) and the fabric (QP-creation failures, transient send
//! completion errors). The layers *consume* the plan; this module only
//! answers pure queries, so the same plan always injects the same faults
//! — the chaos tests assert bit-identical results across runs.
//!
//! The fault classes model the container-cloud failure modes reported for
//! Docker HPC deployments (crashed jobs leaving `/dev/shm` litter,
//! per-container namespace isolation, device unavailability) that the
//! paper's locality protocol implicitly assumes away.

use std::collections::{BTreeMap, BTreeSet};

use crate::scenario::DeploymentScenario;
use crate::topology::{Container, ContainerId, HostId, NamespaceId};

/// Offset added to a container id to mint the private namespace a revoked
/// container is deemed to have been restarted into. High enough to never
/// collide with [`Cluster::fresh_namespace`](crate::Cluster) allocations.
const REVOKED_NS_BASE: u32 = 0x8000_0000;

/// The stale generation number a leftover segment carries. Any value
/// different from the running job's generation works; a recognizable
/// constant makes failures readable.
pub const STALE_GENERATION: u64 = 0xdead;

/// A deterministic, declarative fault-injection plan.
///
/// All sets are keyed by stable identifiers (host ids, container ids,
/// global ranks), never by wall-clock or thread arrival order, so two
/// runs of the same plan inject exactly the same faults.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Seed that derived this plan (recorded for reporting; sampling
    /// happened in [`FaultPlan::sampled`]).
    pub seed: u64,
    /// Hosts whose container-list segment is a leftover from a previous
    /// job: valid checksum, wrong generation. Recovery: re-initialize.
    pub stale_list_hosts: BTreeSet<u32>,
    /// Hosts whose container-list segment is corrupt (bad checksum /
    /// garbage bytes). Recovery: re-initialize.
    pub corrupt_list_hosts: BTreeSet<u32>,
    /// Global ranks that never publish their membership byte before the
    /// init barrier (modeling a rank wedged in container startup).
    /// Recovery: peers retry with backoff, then downgrade the silent rank
    /// to the HCA channel.
    pub omit_publish_ranks: BTreeSet<usize>,
    /// Global ranks whose membership byte is torn: a value from the valid
    /// range but the *wrong* container's byte. Recovery: scan cross-checks
    /// against placement ground truth and downgrades.
    pub torn_publish_ranks: BTreeSet<usize>,
    /// Duplicate publishes: rank → slot of a *different* rank it also
    /// claims (two ranks claiming one slot). Surfaces as `CorruptList`
    /// from the CAS publish; the rightful owner re-asserts its byte.
    pub duplicate_publish: BTreeMap<usize, usize>,
    /// Containers whose IPC-namespace sharing was revoked after placement
    /// (restarted without `--ipc=host`): SHM impossible, co-residency
    /// still real.
    pub revoked_ipc_containers: BTreeSet<u32>,
    /// Containers whose PID-namespace sharing was revoked (restarted
    /// without `--pid=host`): CMA impossible.
    pub revoked_pid_containers: BTreeSet<u32>,
    /// Ranks whose first `n` fabric attach (QP creation) attempts fail
    /// transiently. Recovery: bounded retry with virtual-time backoff.
    pub qp_attach_failures: BTreeMap<usize, u32>,
    /// Every `period`-th fabric send posted by a rank completes in error
    /// (0 = never). Recovery: bounded retry with virtual-time backoff.
    pub send_fault_period: u64,
    /// How many consecutive completion errors each faulted send suffers
    /// before succeeding; must stay below the transport retry budget for
    /// the job to survive.
    pub send_fault_repeats: u32,
}

/// splitmix64 — the repo-standard deterministic hash for derived seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic per-(seed, domain, key) coin.
fn coin(seed: u64, domain: u64, key: u64, p_percent: u64) -> bool {
    splitmix64(seed ^ domain.wrapping_mul(0xa076_1d64_78bd_642f) ^ key) % 100 < p_percent
}

impl FaultPlan {
    /// The empty plan: no faults. Equivalent to not configuring one.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self
            == FaultPlan {
                seed: self.seed,
                ..FaultPlan::default()
            }
    }

    /// Sample a mixed plan from `seed` for `scenario`: each fault class
    /// fires with moderate probability over the scenario's hosts, ranks
    /// and containers. Used by the chaos suite's "everything at once"
    /// runs; identical `(seed, scenario)` always yields identical plans.
    pub fn sampled(seed: u64, scenario: &DeploymentScenario) -> Self {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        let ranks = scenario.num_ranks();
        for h in 0..scenario.cluster.num_hosts() as u64 {
            if coin(seed, 1, h, 25) {
                plan.stale_list_hosts.insert(h as u32);
            } else if coin(seed, 2, h, 25) {
                plan.corrupt_list_hosts.insert(h as u32);
            }
        }
        for r in 0..ranks as u64 {
            // Keep publish faults sparse: at most one rank in ~8 stays
            // silent so the degraded view still finds locality to use.
            if coin(seed, 3, r, 12) {
                plan.omit_publish_ranks.insert(r as usize);
            } else if coin(seed, 4, r, 12) {
                plan.torn_publish_ranks.insert(r as usize);
            }
        }
        for c in &scenario.cluster.containers {
            if c.native {
                continue;
            }
            if coin(seed, 5, c.id.0 as u64, 15) {
                plan.revoked_ipc_containers.insert(c.id.0);
            }
            if coin(seed, 6, c.id.0 as u64, 15) {
                plan.revoked_pid_containers.insert(c.id.0);
            }
        }
        for r in 0..ranks as u64 {
            if coin(seed, 7, r, 20) {
                plan.qp_attach_failures
                    .insert(r as usize, 1 + (splitmix64(seed ^ r) % 2) as u32);
            }
        }
        if coin(seed, 8, 0, 50) {
            plan.send_fault_period = 16 + splitmix64(seed ^ 0x5e17) % 48;
            plan.send_fault_repeats = 1 + (splitmix64(seed ^ 0x9ad) % 2) as u32;
        }
        plan
    }

    // ---- builders ------------------------------------------------------

    /// Leave a stale (previous-generation) container list on `host`.
    pub fn with_stale_list(mut self, host: HostId) -> Self {
        self.stale_list_hosts.insert(host.0);
        self
    }

    /// Leave a corrupt (bad checksum) container list on `host`.
    pub fn with_corrupt_list(mut self, host: HostId) -> Self {
        self.corrupt_list_hosts.insert(host.0);
        self
    }

    /// Make `rank` never publish its membership byte.
    pub fn with_omitted_publish(mut self, rank: usize) -> Self {
        self.omit_publish_ranks.insert(rank);
        self
    }

    /// Make `rank` publish a torn (wrong-container) membership byte.
    pub fn with_torn_publish(mut self, rank: usize) -> Self {
        self.torn_publish_ranks.insert(rank);
        self
    }

    /// Make `rank` also claim `victim_rank`'s slot (double publish).
    pub fn with_duplicate_publish(mut self, rank: usize, victim_rank: usize) -> Self {
        self.duplicate_publish.insert(rank, victim_rank);
        self
    }

    /// Revoke IPC-namespace sharing for `container`.
    pub fn with_revoked_ipc(mut self, container: ContainerId) -> Self {
        self.revoked_ipc_containers.insert(container.0);
        self
    }

    /// Revoke PID-namespace sharing for `container`.
    pub fn with_revoked_pid(mut self, container: ContainerId) -> Self {
        self.revoked_pid_containers.insert(container.0);
        self
    }

    /// Fail `rank`'s first `attempts` QP-creation attempts.
    pub fn with_qp_attach_failures(mut self, rank: usize, attempts: u32) -> Self {
        self.qp_attach_failures.insert(rank, attempts);
        self
    }

    /// Fail every `period`-th posted send with `repeats` consecutive
    /// completion errors before it goes through.
    pub fn with_send_faults(mut self, period: u64, repeats: u32) -> Self {
        self.send_fault_period = period;
        self.send_fault_repeats = repeats;
        self
    }

    // ---- queries -------------------------------------------------------

    /// Does `host` start with a stale leftover container list?
    pub fn list_is_stale(&self, host: HostId) -> bool {
        self.stale_list_hosts.contains(&host.0)
    }

    /// Does `host` start with a corrupt container list?
    pub fn list_is_corrupt(&self, host: HostId) -> bool {
        self.corrupt_list_hosts.contains(&host.0)
    }

    /// Does `rank` stay silent instead of publishing?
    pub fn publish_omitted(&self, rank: usize) -> bool {
        self.omit_publish_ranks.contains(&rank)
    }

    /// Does `rank` publish a torn byte?
    pub fn publish_torn(&self, rank: usize) -> bool {
        self.torn_publish_ranks.contains(&rank)
    }

    /// The slot `rank` wrongly claims in addition to its own, if any.
    pub fn duplicate_claim_of(&self, rank: usize) -> Option<usize> {
        self.duplicate_publish.get(&rank).copied()
    }

    /// Is `container`'s IPC sharing revoked?
    pub fn ipc_revoked(&self, container: ContainerId) -> bool {
        self.revoked_ipc_containers.contains(&container.0)
    }

    /// Is `container`'s PID sharing revoked?
    pub fn pid_revoked(&self, container: ContainerId) -> bool {
        self.revoked_pid_containers.contains(&container.0)
    }

    /// How many of `rank`'s leading attach attempts fail.
    pub fn attach_failures(&self, rank: usize) -> u32 {
        self.qp_attach_failures.get(&rank).copied().unwrap_or(0)
    }

    /// Whether the `op_index`-th send posted by a rank completes in error
    /// on its `attempt`-th try (attempts count from 0).
    pub fn send_fails(&self, op_index: u64, attempt: u32) -> bool {
        self.send_fault_period != 0
            && op_index % self.send_fault_period == self.send_fault_period - 1
            && attempt < self.send_fault_repeats
    }

    /// The IPC namespace `container` effectively lives in once the plan's
    /// revocations apply: its placed namespace normally, or a fresh
    /// private one if revoked.
    pub fn effective_ipc_ns(&self, container: &Container) -> NamespaceId {
        if self.ipc_revoked(container.id) {
            NamespaceId(REVOKED_NS_BASE + container.id.0)
        } else {
            container.ipc_ns
        }
    }

    /// The PID namespace `container` effectively lives in (see
    /// [`FaultPlan::effective_ipc_ns`]).
    pub fn effective_pid_ns(&self, container: &Container) -> NamespaceId {
        if self.pid_revoked(container.id) {
            NamespaceId(REVOKED_NS_BASE + container.id.0)
        } else {
            container.pid_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NamespaceSharing;

    #[test]
    fn sampling_is_deterministic() {
        let s = DeploymentScenario::containers(2, 2, 2, NamespaceSharing::default());
        let a = FaultPlan::sampled(42, &s);
        let b = FaultPlan::sampled(42, &s);
        assert_eq!(a, b);
        let c = FaultPlan::sampled(43, &s);
        assert_ne!(a, c, "different seeds should (generically) differ");
    }

    #[test]
    fn builders_round_trip_through_queries() {
        let p = FaultPlan::none()
            .with_stale_list(HostId(0))
            .with_corrupt_list(HostId(1))
            .with_omitted_publish(3)
            .with_torn_publish(4)
            .with_duplicate_publish(5, 6)
            .with_revoked_ipc(ContainerId(1))
            .with_revoked_pid(ContainerId(2))
            .with_qp_attach_failures(0, 2)
            .with_send_faults(8, 1);
        assert!(p.list_is_stale(HostId(0)) && !p.list_is_stale(HostId(1)));
        assert!(p.list_is_corrupt(HostId(1)) && !p.list_is_corrupt(HostId(0)));
        assert!(p.publish_omitted(3) && !p.publish_omitted(4));
        assert!(p.publish_torn(4) && !p.publish_torn(3));
        assert_eq!(p.duplicate_claim_of(5), Some(6));
        assert_eq!(p.duplicate_claim_of(6), None);
        assert!(p.ipc_revoked(ContainerId(1)) && !p.ipc_revoked(ContainerId(2)));
        assert!(p.pid_revoked(ContainerId(2)) && !p.pid_revoked(ContainerId(1)));
        assert_eq!(p.attach_failures(0), 2);
        assert_eq!(p.attach_failures(1), 0);
        assert!(!p.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn send_fault_schedule_is_periodic_and_bounded() {
        let p = FaultPlan::none().with_send_faults(4, 2);
        // Ops 3, 7, 11, ... fail on attempts 0 and 1, succeed from 2.
        assert!(p.send_fails(3, 0) && p.send_fails(3, 1) && !p.send_fails(3, 2));
        assert!(!p.send_fails(0, 0) && !p.send_fails(2, 0) && p.send_fails(7, 0));
        assert!(!FaultPlan::none().send_fails(3, 0), "period 0 = never");
    }

    #[test]
    fn revoked_namespaces_are_private_and_stable() {
        let s = DeploymentScenario::containers(1, 2, 2, NamespaceSharing::default());
        let a = s.cluster.container(ContainerId(0)).clone();
        let b = s.cluster.container(ContainerId(1)).clone();
        let p = FaultPlan::none().with_revoked_ipc(ContainerId(1));
        assert_eq!(p.effective_ipc_ns(&a), a.ipc_ns);
        assert_ne!(p.effective_ipc_ns(&b), b.ipc_ns);
        assert_ne!(p.effective_ipc_ns(&b), p.effective_ipc_ns(&a));
        // Stable across calls (the downgrade decision must not flap).
        assert_eq!(p.effective_ipc_ns(&b), p.effective_ipc_ns(&b));
        // PID untouched by an IPC revocation.
        assert_eq!(p.effective_pid_ns(&b), b.pid_ns);
    }
}
