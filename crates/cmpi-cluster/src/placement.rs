//! Rank placement: which host / container / socket / core each MPI rank
//! occupies.

use crate::topology::{Cluster, ContainerId, CoreId, HostId, SocketId};

/// Where one MPI rank lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RankLoc {
    /// Physical host.
    pub host: HostId,
    /// Container (or native pseudo-container).
    pub container: ContainerId,
    /// Socket of the pinned core.
    pub socket: SocketId,
    /// Pinned core (the paper pins containers to disjoint cores to avoid
    /// oversubscription in the collective experiments).
    pub core: CoreId,
}

/// A complete placement of `n` ranks onto a [`Cluster`].
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Placement {
    locs: Vec<RankLoc>,
}

impl Placement {
    /// Build from an explicit location list.
    pub fn new(locs: Vec<RankLoc>) -> Self {
        Placement { locs }
    }

    /// Number of ranks placed.
    pub fn num_ranks(&self) -> usize {
        self.locs.len()
    }

    /// Location of `rank`.
    pub fn loc(&self, rank: usize) -> RankLoc {
        self.locs[rank]
    }

    /// All locations, rank-ordered.
    pub fn locs(&self) -> &[RankLoc] {
        &self.locs
    }

    /// Ranks co-resident with `rank` (same physical host), including
    /// itself, in rank order. This is the *ground truth* the container
    /// locality detector must recover at runtime.
    pub fn co_resident_ranks(&self, rank: usize) -> Vec<usize> {
        let host = self.locs[rank].host;
        (0..self.locs.len())
            .filter(|&r| self.locs[r].host == host)
            .collect()
    }

    /// `true` when the two ranks are in the *same container*.
    pub fn same_container(&self, a: usize, b: usize) -> bool {
        self.locs[a].container == self.locs[b].container
    }

    /// `true` when the two ranks are on the same host.
    pub fn same_host(&self, a: usize, b: usize) -> bool {
        self.locs[a].host == self.locs[b].host
    }

    /// `true` when the two ranks are pinned to the same socket of the same
    /// host.
    pub fn same_socket(&self, a: usize, b: usize) -> bool {
        self.same_host(a, b) && self.locs[a].socket == self.locs[b].socket
    }

    /// Number of distinct hosts used.
    pub fn hosts_used(&self) -> usize {
        let mut h: Vec<HostId> = self.locs.iter().map(|l| l.host).collect();
        h.sort();
        h.dedup();
        h.len()
    }

    /// Number of distinct containers used.
    pub fn containers_used(&self) -> usize {
        let mut c: Vec<ContainerId> = self.locs.iter().map(|l| l.container).collect();
        c.sort();
        c.dedup();
        c.len()
    }

    /// Validate the placement against a cluster: containers exist, cores
    /// are within range and no two ranks share a core (the paper pins one
    /// rank per core).
    pub fn validate(&self, cluster: &Cluster) -> Result<(), String> {
        let mut used: Vec<(HostId, CoreId)> = Vec::with_capacity(self.locs.len());
        for (rank, loc) in self.locs.iter().enumerate() {
            if loc.host.0 as usize >= cluster.num_hosts() {
                return Err(format!("rank {rank}: host {} out of range", loc.host));
            }
            let host = cluster.host(loc.host);
            if loc.container.0 as usize >= cluster.containers.len() {
                return Err(format!(
                    "rank {rank}: container {} out of range",
                    loc.container
                ));
            }
            let cont = cluster.container(loc.container);
            if cont.host != loc.host {
                return Err(format!(
                    "rank {rank}: container {} lives on {} not {}",
                    loc.container, cont.host, loc.host
                ));
            }
            if loc.core.0 >= host.total_cores() {
                return Err(format!("rank {rank}: core {:?} out of range", loc.core));
            }
            if host.socket_of_core(loc.core) != loc.socket {
                return Err(format!("rank {rank}: socket/core mismatch"));
            }
            let key = (loc.host, loc.core);
            if used.contains(&key) {
                return Err(format!(
                    "rank {rank}: core {:?} on {} double-booked",
                    loc.core, loc.host
                ));
            }
            used.push(key);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Cluster;

    fn cluster_and_placement() -> (Cluster, Placement) {
        let mut c = Cluster::new();
        let h0 = c.add_host(2, 4);
        let h1 = c.add_host(2, 4);
        let c0 = c.add_container(h0, true, true, true);
        let c1 = c.add_container(h0, true, true, true);
        let c2 = c.add_container(h1, true, true, true);
        let mk = |host, container, core: u32, cluster: &Cluster| RankLoc {
            host,
            container,
            socket: cluster.host(host).socket_of_core(CoreId(core)),
            core: CoreId(core),
        };
        let p = Placement::new(vec![
            mk(h0, c0, 0, &c),
            mk(h0, c0, 1, &c),
            mk(h0, c1, 4, &c),
            mk(h1, c2, 0, &c),
        ]);
        (c, p)
    }

    #[test]
    fn valid_placement_passes() {
        let (c, p) = cluster_and_placement();
        p.validate(&c).unwrap();
        assert_eq!(p.num_ranks(), 4);
        assert_eq!(p.hosts_used(), 2);
        assert_eq!(p.containers_used(), 3);
    }

    #[test]
    fn co_residency_ground_truth() {
        let (_, p) = cluster_and_placement();
        assert_eq!(p.co_resident_ranks(0), vec![0, 1, 2]);
        assert_eq!(p.co_resident_ranks(3), vec![3]);
        assert!(p.same_container(0, 1));
        assert!(!p.same_container(0, 2));
        assert!(p.same_host(0, 2));
        assert!(!p.same_host(0, 3));
    }

    #[test]
    fn socket_relations() {
        let (_, p) = cluster_and_placement();
        assert!(p.same_socket(0, 1)); // cores 0,1 -> socket 0
        assert!(!p.same_socket(0, 2)); // core 4 -> socket 1
        assert!(!p.same_socket(0, 3)); // different hosts never share
    }

    #[test]
    fn double_booked_core_rejected() {
        let (c, p) = cluster_and_placement();
        let mut locs = p.locs().to_vec();
        locs[1].core = locs[0].core;
        assert!(Placement::new(locs).validate(&c).is_err());
    }

    #[test]
    fn container_host_mismatch_rejected() {
        let (c, p) = cluster_and_placement();
        let mut locs = p.locs().to_vec();
        locs[3].host = HostId(0); // container c2 lives on host 1
        assert!(Placement::new(locs).validate(&c).is_err());
    }

    #[test]
    fn socket_core_mismatch_rejected() {
        let (c, p) = cluster_and_placement();
        let mut locs = p.locs().to_vec();
        locs[2].socket = SocketId(0); // core 4 is on socket 1
        assert!(Placement::new(locs).validate(&c).is_err());
    }
}
