//! # cmpi-cluster — simulated cluster substrate
//!
//! This crate models the physical and virtual environment the paper's
//! experiments run on: bare-metal InfiniBand hosts with multi-socket CPUs,
//! Docker-style containers with Linux namespace isolation (UTS/IPC/PID),
//! rank placements, and the *virtual time* machinery used by every other
//! crate to account communication and computation costs deterministically.
//!
//! Nothing in this crate performs communication; it is the shared
//! vocabulary for [`cmpi_shmem`](https://docs.invalid), `cmpi-fabric` and
//! `cmpi-core`.
//!
//! ## Why a simulation substrate?
//!
//! The reproduced paper (Zhang, Lu, Panda — ICPP 2016) ran on a 16-node
//! Chameleon Cloud testbed with Mellanox FDR HCAs and Docker 1.8. None of
//! that hardware is available here, but the paper's *effect* — hostname-based
//! locality detection mis-routing intra-host traffic through the HCA — is a
//! pure software phenomenon. We therefore rebuild the environment as a
//! deterministic model: ranks run as real OS threads, data movement really
//! happens, and elapsed time is *virtual*, advanced by a calibrated cost
//! model ([`CostModel`]).

#![forbid(unsafe_code)]
pub mod cost;
pub mod faults;
pub mod placement;
pub mod scenario;
pub mod time;
pub mod topology;
pub mod tunables;

pub use cost::{Channel, CostModel};
pub use faults::{FaultPlan, MidRunFault, MidRunTrigger};
pub use placement::{Placement, RankLoc};
pub use scenario::{DeploymentScenario, NamespaceSharing};
pub use time::SimTime;
pub use topology::{Cluster, Container, ContainerId, CoreId, Host, HostId, NamespaceId, SocketId};
pub use tunables::Tunables;
