//! Cluster topology: hosts, sockets, cores, containers and namespaces.
//!
//! The model follows the paper's testbed: bare-metal hosts, each with a
//! number of CPU sockets and cores, running some number of Docker-style
//! containers. Each container has its own **UTS namespace** (a unique
//! hostname — this is what defeats hostname-based locality detection in the
//! default MPI runtime), and may or may not share the host's **IPC** and
//! **PID** namespaces. Sharing the IPC namespace is the precondition for
//! cross-container shared-memory segments; sharing the PID namespace is the
//! precondition for Cross Memory Attach.

use std::fmt;

/// Identifier of a physical host in the cluster.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct HostId(pub u32);

/// Identifier of a CPU socket within a host.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct SocketId(pub u32);

/// Identifier of a core within a host (global across the host's sockets).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct CoreId(pub u32);

/// Identifier of a container, unique across the whole cluster.
///
/// The pseudo-container representing "processes running directly on the
/// host" (the native scenario) is an ordinary `ContainerId` whose namespaces
/// are the host namespaces.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct ContainerId(pub u32);

/// Identifier of a Linux namespace instance (IPC or PID), unique across the
/// cluster. Two execution environments can use a kernel facility together
/// exactly when they hold the *same* `NamespaceId` for the corresponding
/// namespace type.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct NamespaceId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cont{}", self.0)
    }
}

/// A container (or the host-native execution environment).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Container {
    /// Cluster-unique id.
    pub id: ContainerId,
    /// Host this container runs on.
    pub host: HostId,
    /// The UTS hostname visible inside the container. Docker assigns every
    /// container a unique hostname; this string is all a hostname-based
    /// locality policy gets to see.
    pub hostname: String,
    /// IPC namespace: governs visibility of shared-memory segments.
    pub ipc_ns: NamespaceId,
    /// PID namespace: governs whether CMA (`process_vm_readv`-style) calls
    /// can address a peer process.
    pub pid_ns: NamespaceId,
    /// Whether the container was started `--privileged` (grants access to
    /// the host HCA device). The paper always enables this; we model it so
    /// the failure-injection tests can take it away.
    pub privileged: bool,
    /// `true` for the pseudo-container representing processes running
    /// directly on the host (no container runtime overhead applies).
    pub native: bool,
}

impl Container {
    /// `true` when `self` and `other` are on the same physical host.
    pub fn co_resident_with(&self, other: &Container) -> bool {
        self.host == other.host
    }

    /// `true` when the two containers can map a common shared-memory
    /// segment (same IPC namespace on the same host).
    pub fn shares_ipc_with(&self, other: &Container) -> bool {
        self.host == other.host && self.ipc_ns == other.ipc_ns
    }

    /// `true` when a process in `self` can CMA-address a process in
    /// `other` (same PID namespace on the same host).
    pub fn shares_pid_with(&self, other: &Container) -> bool {
        self.host == other.host && self.pid_ns == other.pid_ns
    }
}

/// A physical host.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Host {
    /// Cluster-unique id.
    pub id: HostId,
    /// The host's own (native) hostname.
    pub hostname: String,
    /// Number of CPU sockets.
    pub sockets: u32,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// The host's own IPC namespace.
    pub host_ipc_ns: NamespaceId,
    /// The host's own PID namespace.
    pub host_pid_ns: NamespaceId,
    /// Containers deployed on this host (includes the native
    /// pseudo-container when ranks run directly on the host).
    pub containers: Vec<ContainerId>,
}

impl Host {
    /// Total number of cores on the host.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// The socket a given core belongs to.
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        SocketId(core.0 / self.cores_per_socket)
    }
}

/// A full cluster description: hosts plus all containers deployed on them.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Cluster {
    /// All hosts, indexed by `HostId.0`.
    pub hosts: Vec<Host>,
    /// All containers, indexed by `ContainerId.0`.
    pub containers: Vec<Container>,
    next_ns: u32,
}

impl Cluster {
    /// Create an empty cluster.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Allocate a fresh namespace id.
    pub fn fresh_namespace(&mut self) -> NamespaceId {
        let id = NamespaceId(self.next_ns);
        self.next_ns += 1;
        id
    }

    /// Add a host modeled on the paper's testbed nodes (2 × 12-core Xeon
    /// E5-2670 v3). Returns its id.
    pub fn add_host(&mut self, sockets: u32, cores_per_socket: u32) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        let ipc = self.fresh_namespace();
        let pid = self.fresh_namespace();
        self.hosts.push(Host {
            id,
            hostname: format!("node{:03}", id.0),
            sockets,
            cores_per_socket,
            host_ipc_ns: ipc,
            host_pid_ns: pid,
            containers: Vec::new(),
        });
        id
    }

    /// Add a container on `host`.
    ///
    /// `share_ipc` / `share_pid` correspond to `docker run --ipc=host` /
    /// `--pid=host`; when false the container receives private namespaces.
    pub fn add_container(
        &mut self,
        host: HostId,
        share_ipc: bool,
        share_pid: bool,
        privileged: bool,
    ) -> ContainerId {
        let id = ContainerId(self.containers.len() as u32);
        let (host_ipc, host_pid) = {
            let h = &self.hosts[host.0 as usize];
            (h.host_ipc_ns, h.host_pid_ns)
        };
        let ipc_ns = if share_ipc {
            host_ipc
        } else {
            self.fresh_namespace()
        };
        let pid_ns = if share_pid {
            host_pid
        } else {
            self.fresh_namespace()
        };
        // Docker generates a unique (container-id derived) hostname.
        let hostname = format!("ctr-{:08x}", 0x9e3779b9u32.wrapping_mul(id.0 + 1));
        self.containers.push(Container {
            id,
            host,
            hostname,
            ipc_ns,
            pid_ns,
            privileged,
            native: false,
        });
        self.hosts[host.0 as usize].containers.push(id);
        id
    }

    /// Add the "native" pseudo-container for a host: an execution
    /// environment whose hostname and namespaces are exactly the host's.
    pub fn add_native_env(&mut self, host: HostId) -> ContainerId {
        let id = ContainerId(self.containers.len() as u32);
        let h = &self.hosts[host.0 as usize];
        self.containers.push(Container {
            id,
            host,
            hostname: h.hostname.clone(),
            ipc_ns: h.host_ipc_ns,
            pid_ns: h.host_pid_ns,
            privileged: true,
            native: true,
        });
        self.hosts[host.0 as usize].containers.push(id);
        id
    }

    /// Look up a host.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    /// Look up a container.
    pub fn container(&self, id: ContainerId) -> &Container {
        &self.containers[id.0 as usize]
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_host_cluster() -> Cluster {
        let mut c = Cluster::new();
        let h0 = c.add_host(2, 12);
        let h1 = c.add_host(2, 12);
        assert_eq!(h0, HostId(0));
        assert_eq!(h1, HostId(1));
        c
    }

    #[test]
    fn hosts_get_unique_namespaces_and_names() {
        let c = two_host_cluster();
        assert_ne!(c.host(HostId(0)).host_ipc_ns, c.host(HostId(1)).host_ipc_ns);
        assert_ne!(c.host(HostId(0)).hostname, c.host(HostId(1)).hostname);
    }

    #[test]
    fn shared_namespace_containers_see_each_other() {
        let mut c = two_host_cluster();
        let a = c.add_container(HostId(0), true, true, true);
        let b = c.add_container(HostId(0), true, true, true);
        let (a, b) = (c.container(a).clone(), c.container(b).clone());
        assert!(a.co_resident_with(&b));
        assert!(a.shares_ipc_with(&b));
        assert!(a.shares_pid_with(&b));
        // ...but their hostnames differ: this is the paper's root cause.
        assert_ne!(a.hostname, b.hostname);
    }

    #[test]
    fn private_namespaces_isolate() {
        let mut c = two_host_cluster();
        let a = c.add_container(HostId(0), false, false, true);
        let b = c.add_container(HostId(0), true, true, true);
        let (a, b) = (c.container(a).clone(), c.container(b).clone());
        assert!(a.co_resident_with(&b));
        assert!(!a.shares_ipc_with(&b));
        assert!(!a.shares_pid_with(&b));
    }

    #[test]
    fn cross_host_containers_never_share() {
        let mut c = two_host_cluster();
        let a = c.add_container(HostId(0), true, true, true);
        let b = c.add_container(HostId(1), true, true, true);
        let (a, b) = (c.container(a).clone(), c.container(b).clone());
        assert!(!a.co_resident_with(&b));
        assert!(!a.shares_ipc_with(&b));
        assert!(!a.shares_pid_with(&b));
    }

    #[test]
    fn native_env_mirrors_host_identity() {
        let mut c = two_host_cluster();
        let n = c.add_native_env(HostId(0));
        let n = c.container(n).clone();
        let h = c.host(HostId(0));
        assert_eq!(n.hostname, h.hostname);
        assert_eq!(n.ipc_ns, h.host_ipc_ns);
        assert_eq!(n.pid_ns, h.host_pid_ns);
    }

    #[test]
    fn socket_of_core_partitions_cores() {
        let c = two_host_cluster();
        let h = c.host(HostId(0));
        assert_eq!(h.total_cores(), 24);
        assert_eq!(h.socket_of_core(CoreId(0)), SocketId(0));
        assert_eq!(h.socket_of_core(CoreId(11)), SocketId(0));
        assert_eq!(h.socket_of_core(CoreId(12)), SocketId(1));
        assert_eq!(h.socket_of_core(CoreId(23)), SocketId(1));
    }

    #[test]
    fn container_list_registered_on_host() {
        let mut c = two_host_cluster();
        let a = c.add_container(HostId(0), true, true, true);
        let b = c.add_container(HostId(0), true, true, true);
        assert_eq!(c.host(HostId(0)).containers, vec![a, b]);
        assert!(c.host(HostId(1)).containers.is_empty());
    }
}
