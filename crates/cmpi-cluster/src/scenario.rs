//! Deployment scenarios — reusable builders for the exact cluster layouts
//! the paper evaluates.
//!
//! Every experiment in the paper is a combination of: number of hosts,
//! containers per host, ranks per container, namespace sharing, and core
//! pinning. [`DeploymentScenario`] packages a [`Cluster`] and a matching
//! [`Placement`] with a descriptive name so the benchmark harness can
//! enumerate scenarios declaratively.

use crate::placement::{Placement, RankLoc};
use crate::topology::{Cluster, ContainerId, CoreId, HostId};

/// Which host namespaces containers are started with.
///
/// The paper's deployments always share both (`docker run --ipc=host
/// --pid=host --privileged`); the failure-injection tests flip these off to
/// verify the library degrades gracefully to the HCA channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NamespaceSharing {
    /// Share the host IPC namespace (`--ipc=host`) — prerequisite for SHM.
    pub ipc: bool,
    /// Share the host PID namespace (`--pid=host`) — prerequisite for CMA.
    pub pid: bool,
    /// Run privileged (`--privileged`) — prerequisite for HCA access.
    pub privileged: bool,
}

impl Default for NamespaceSharing {
    fn default() -> Self {
        NamespaceSharing {
            ipc: true,
            pid: true,
            privileged: true,
        }
    }
}

impl NamespaceSharing {
    /// Fully isolated containers (no host namespace sharing).
    pub fn isolated() -> Self {
        NamespaceSharing {
            ipc: false,
            pid: false,
            privileged: true,
        }
    }
}

/// A named cluster + placement combination.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct DeploymentScenario {
    /// Human-readable scenario name ("2-Containers", "Native", ...).
    pub name: String,
    /// The simulated cluster.
    pub cluster: Cluster,
    /// Rank placement onto the cluster.
    pub placement: Placement,
}

/// Sockets per host on the paper's testbed (Xeon E5-2670 v3 duals).
pub const TESTBED_SOCKETS: u32 = 2;
/// Cores per socket on the paper's testbed.
pub const TESTBED_CORES_PER_SOCKET: u32 = 12;

impl DeploymentScenario {
    /// Native scenario: `ranks_per_host` MPI processes directly on each of
    /// `hosts` hosts, pinned to consecutive cores.
    pub fn native(hosts: u32, ranks_per_host: u32) -> Self {
        let mut cluster = Cluster::new();
        let mut locs = Vec::new();
        for _ in 0..hosts {
            let h = cluster.add_host(TESTBED_SOCKETS, TESTBED_CORES_PER_SOCKET);
            let env = cluster.add_native_env(h);
            place_block(&cluster, h, env, ranks_per_host, 0, &mut locs);
        }
        DeploymentScenario {
            name: "Native".to_string(),
            cluster,
            placement: Placement::new(locs),
        }
    }

    /// Containerized scenario: `containers_per_host` containers on each of
    /// `hosts` hosts, `ranks_per_container` ranks each. Ranks are numbered
    /// host-major then container-major (the same block ordering `mpirun`
    /// produces with a host file), and pinned to disjoint consecutive
    /// cores.
    pub fn containers(
        hosts: u32,
        containers_per_host: u32,
        ranks_per_container: u32,
        sharing: NamespaceSharing,
    ) -> Self {
        let mut cluster = Cluster::new();
        let mut locs = Vec::new();
        for _ in 0..hosts {
            let h = cluster.add_host(TESTBED_SOCKETS, TESTBED_CORES_PER_SOCKET);
            for ci in 0..containers_per_host {
                let cont = cluster.add_container(h, sharing.ipc, sharing.pid, sharing.privileged);
                place_block(
                    &cluster,
                    h,
                    cont,
                    ranks_per_container,
                    ci * ranks_per_container,
                    &mut locs,
                );
            }
        }
        let name = if containers_per_host == 1 {
            "1-Container".to_string()
        } else {
            format!("{containers_per_host}-Containers")
        };
        DeploymentScenario {
            name,
            cluster,
            placement: Placement::new(locs),
        }
    }

    /// Two-rank point-to-point scenario on a single host (Section V-B):
    /// each rank in its own container when `containerized`, pinned either
    /// to the same socket or to different sockets.
    pub fn pt2pt_pair(containerized: bool, same_socket: bool, sharing: NamespaceSharing) -> Self {
        let mut cluster = Cluster::new();
        let h = cluster.add_host(TESTBED_SOCKETS, TESTBED_CORES_PER_SOCKET);
        let cores = if same_socket {
            [0u32, 1u32]
        } else {
            [0u32, TESTBED_CORES_PER_SOCKET]
        };
        let mut locs = Vec::new();
        for core in cores {
            let env = if containerized {
                cluster.add_container(h, sharing.ipc, sharing.pid, sharing.privileged)
            } else {
                cluster.add_native_env(h)
            };
            let host = cluster.host(h);
            locs.push(RankLoc {
                host: h,
                container: env,
                socket: host.socket_of_core(CoreId(core)),
                core: CoreId(core),
            });
        }
        let name = format!(
            "{}-{}",
            if containerized { "Cont" } else { "Native" },
            if same_socket {
                "intra-socket"
            } else {
                "inter-socket"
            }
        );
        DeploymentScenario {
            name,
            cluster,
            placement: Placement::new(locs),
        }
    }

    /// Two-rank scenario across two hosts (for HCA threshold tuning,
    /// Fig. 7(c)).
    pub fn pt2pt_two_hosts(containerized: bool, sharing: NamespaceSharing) -> Self {
        let mut cluster = Cluster::new();
        let mut locs = Vec::new();
        for _ in 0..2 {
            let h = cluster.add_host(TESTBED_SOCKETS, TESTBED_CORES_PER_SOCKET);
            let env = if containerized {
                cluster.add_container(h, sharing.ipc, sharing.pid, sharing.privileged)
            } else {
                cluster.add_native_env(h)
            };
            let host = cluster.host(h);
            locs.push(RankLoc {
                host: h,
                container: env,
                socket: host.socket_of_core(CoreId(0)),
                core: CoreId(0),
            });
        }
        DeploymentScenario {
            name: if containerized {
                "Cont-2hosts"
            } else {
                "Native-2hosts"
            }
            .to_string(),
            cluster,
            placement: Placement::new(locs),
        }
    }

    /// The Fig. 1 / Fig. 11 single-host scenarios: 16 ranks on one host in
    /// `containers_per_host` containers (0 = native).
    pub fn fig1(containers_per_host: u32) -> Self {
        const TOTAL: u32 = 16;
        if containers_per_host == 0 {
            Self::native(1, TOTAL)
        } else {
            Self::containers(
                1,
                containers_per_host,
                TOTAL / containers_per_host,
                NamespaceSharing::default(),
            )
        }
    }

    /// The Section V-C/V-D scenario: 64 containers spread evenly across 16
    /// hosts, 256 ranks total (4 containers × 4 ranks per host). `scale`
    /// divides the layout for quicker test runs (scale 4 = 4 hosts,
    /// 64 ranks).
    pub fn collective_256(scale_down: u32) -> Self {
        let hosts = 16 / scale_down.max(1);
        Self::containers(hosts.max(1), 4, 4, NamespaceSharing::default())
    }

    /// Native counterpart of [`DeploymentScenario::collective_256`].
    pub fn collective_256_native(scale_down: u32) -> Self {
        let hosts = (16 / scale_down.max(1)).max(1);
        Self::native(hosts, 16)
    }

    /// Total number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.placement.num_ranks()
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.placement.validate(&self.cluster)
    }
}

/// Pin `n` ranks of container `cont` on host `h` to consecutive cores
/// starting at `first_core`, appending to `locs`.
fn place_block(
    cluster: &Cluster,
    h: HostId,
    cont: ContainerId,
    n: u32,
    first_core: u32,
    locs: &mut Vec<RankLoc>,
) {
    let host = cluster.host(h);
    assert!(
        first_core + n <= host.total_cores(),
        "host {h} has {} cores, cannot pin {} ranks from core {}",
        host.total_cores(),
        n,
        first_core
    );
    for i in 0..n {
        let core = CoreId(first_core + i);
        locs.push(RankLoc {
            host: h,
            container: cont,
            socket: host.socket_of_core(core),
            core,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_scenario_shape() {
        let s = DeploymentScenario::native(2, 8);
        s.validate().unwrap();
        assert_eq!(s.num_ranks(), 16);
        assert_eq!(s.placement.hosts_used(), 2);
        assert_eq!(s.placement.containers_used(), 2); // one native env per host
        assert!(s.placement.same_container(0, 7));
        assert!(!s.placement.same_host(0, 8));
    }

    #[test]
    fn fig1_scenarios_match_paper() {
        for (cph, conts) in [(0u32, 1usize), (1, 1), (2, 2), (4, 4)] {
            let s = DeploymentScenario::fig1(cph);
            s.validate().unwrap();
            assert_eq!(s.num_ranks(), 16, "{}", s.name);
            assert_eq!(s.placement.hosts_used(), 1);
            assert_eq!(s.placement.containers_used(), conts);
        }
        assert_eq!(DeploymentScenario::fig1(2).name, "2-Containers");
        assert_eq!(DeploymentScenario::fig1(0).name, "Native");
    }

    #[test]
    fn containers_share_host_namespaces_by_default() {
        let s = DeploymentScenario::containers(1, 2, 2, NamespaceSharing::default());
        let a = s.cluster.container(s.placement.loc(0).container).clone();
        let b = s.cluster.container(s.placement.loc(2).container).clone();
        assert!(a.shares_ipc_with(&b));
        assert!(a.shares_pid_with(&b));
        assert_ne!(a.hostname, b.hostname);
    }

    #[test]
    fn isolated_containers_do_not_share() {
        let s = DeploymentScenario::containers(1, 2, 2, NamespaceSharing::isolated());
        let a = s.cluster.container(s.placement.loc(0).container).clone();
        let b = s.cluster.container(s.placement.loc(2).container).clone();
        assert!(!a.shares_ipc_with(&b));
        assert!(!a.shares_pid_with(&b));
    }

    #[test]
    fn pt2pt_pair_socket_layouts() {
        let intra = DeploymentScenario::pt2pt_pair(true, true, NamespaceSharing::default());
        intra.validate().unwrap();
        assert!(intra.placement.same_socket(0, 1));
        assert!(!intra.placement.same_container(0, 1));

        let inter = DeploymentScenario::pt2pt_pair(true, false, NamespaceSharing::default());
        inter.validate().unwrap();
        assert!(!inter.placement.same_socket(0, 1));
        assert!(inter.placement.same_host(0, 1));
    }

    #[test]
    fn two_host_pair_is_remote() {
        let s = DeploymentScenario::pt2pt_two_hosts(true, NamespaceSharing::default());
        s.validate().unwrap();
        assert!(!s.placement.same_host(0, 1));
    }

    #[test]
    fn collective_scenario_is_256_ranks() {
        let s = DeploymentScenario::collective_256(1);
        s.validate().unwrap();
        assert_eq!(s.num_ranks(), 256);
        assert_eq!(s.placement.hosts_used(), 16);
        assert_eq!(s.placement.containers_used(), 64);
        // Scaled-down variant for tests.
        let s = DeploymentScenario::collective_256(4);
        s.validate().unwrap();
        assert_eq!(s.num_ranks(), 64);
        assert_eq!(s.placement.hosts_used(), 4);
    }

    #[test]
    fn rank_order_is_block_by_container() {
        let s = DeploymentScenario::containers(2, 2, 4, NamespaceSharing::default());
        // ranks 0..4 container 0, 4..8 container 1 (host 0), 8..12 container 2...
        assert!(s.placement.same_container(0, 3));
        assert!(!s.placement.same_container(3, 4));
        assert!(s.placement.same_host(0, 7));
        assert!(!s.placement.same_host(7, 8));
    }
}
