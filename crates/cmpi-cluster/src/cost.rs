//! The channel cost model.
//!
//! All virtual-time accounting in the simulation flows through this module.
//! The constants are calibrated against the numbers the paper reports for
//! its Chameleon Cloud testbed (24-core Xeon E5-2670 hosts, Mellanox
//! ConnectX-3 FDR HCAs):
//!
//! * intra-socket 1 KiB two-sided latency — default (HCA loopback) 2.26 µs,
//!   locality-aware (SHM) 0.47 µs, native 0.44 µs (Section V-B);
//! * the CMA channel overtakes the SHM channel above ≈ 8 KiB (Fig. 3(b),
//!   Fig. 7(a));
//! * the HCA eager/rendezvous crossover sits near 17 KiB (Fig. 7(c));
//! * SHM beats HCA loopback by up to 77 % latency / 111 % bandwidth
//!   (Fig. 3(b)(c)).
//!
//! Bandwidths are stored as **bytes per microsecond** (numerically equal to
//! MB/s ÷ 1000, and to GB/s × 1000), which keeps all arithmetic in exact
//! integer nanoseconds: `time_ns = bytes * 1000 / bytes_per_us`.

use crate::time::SimTime;

/// The three MVAPICH2 communication channels the paper analyses.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub enum Channel {
    /// User-space shared-memory channel (double copy through a bounded
    /// eager queue). Requires a common IPC namespace.
    Shm,
    /// Cross Memory Attach channel (single copy via a
    /// `process_vm_readv`-style system call). Requires a common PID
    /// namespace.
    Cma,
    /// InfiniBand HCA channel (network loopback when the peers are on the
    /// same host).
    Hca,
}

impl Channel {
    /// All channels, in the order the paper lists them.
    pub const ALL: [Channel; 3] = [Channel::Shm, Channel::Cma, Channel::Hca];

    /// Short uppercase name as used in the paper's Table I.
    pub fn name(self) -> &'static str {
        match self {
            Channel::Shm => "SHM",
            Channel::Cma => "CMA",
            Channel::Hca => "HCA",
        }
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic cost model for every operation the substrates perform.
///
/// The default values reproduce the paper's reported shapes; tests and
/// ablations may construct variants.
/// `Copy` on purpose: the runtime snapshots the model into a stack local
/// at the top of every operation (`let cost = self.state.cost;`) instead
/// of cloning through an allocation or bouncing an `Arc` refcount cache
/// line between rank threads.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    // ---- memory system ----------------------------------------------------
    /// Plain `memcpy` bandwidth within one socket, bytes/µs (10 GB/s).
    pub copy_bw: u64,
    /// Effective per-side bandwidth of a copy through a *shared* SHM queue,
    /// bytes/µs. Lower than `copy_bw` because the producer/consumer pattern
    /// bounces cache lines between cores (8 GB/s).
    pub shm_copy_bw: u64,
    /// Multiplier numerator/denominator applied to copy costs when source
    /// and destination cores sit on different sockets (QPI hop): 14/10 =
    /// 1.4×.
    pub inter_socket_num: u64,
    /// See [`CostModel::inter_socket_num`].
    pub inter_socket_den: u64,
    /// Working-set size above which copies through a shared queue stop
    /// fitting in LLC-friendly space and pay [`CostModel::cache_penalty_num`]
    /// (256 KiB — matches the 128 KiB optimum of Fig. 7(b), the largest
    /// setting whose send+receive footprint still fits).
    pub cache_threshold: u64,
    /// Cache-miss multiplier numerator/denominator for oversized queue
    /// footprints: 19/10 = 1.9×.
    pub cache_penalty_num: u64,
    /// See [`CostModel::cache_penalty_num`].
    pub cache_penalty_den: u64,

    // ---- SHM channel -------------------------------------------------------
    /// Sender bookkeeping per SHM packet (slot claim, header write), ns.
    pub shm_post_ns: u64,
    /// Propagation delay before the receiver can observe a completed SHM
    /// packet, ns.
    pub shm_wakeup_ns: u64,
    /// Receiver-side matching/dequeue cost per SHM packet, ns.
    pub shm_match_ns: u64,

    // ---- CMA channel -------------------------------------------------------
    /// Fixed syscall overhead of one `process_vm_readv`/`writev`, ns.
    /// This is what makes CMA lose to SHM below ≈ 8 KiB.
    pub cma_syscall_ns: u64,

    // ---- HCA channel -------------------------------------------------------
    /// Cost of posting one work-queue entry, ns.
    pub hca_post_ns: u64,
    /// One-way wire latency through the HCA when both endpoints are on the
    /// same host (loopback through the adapter), ns.
    pub hca_loopback_latency_ns: u64,
    /// One-way wire latency between two hosts through the FDR switch, ns.
    pub hca_wire_latency_ns: u64,
    /// Effective loopback bandwidth through the adapter, bytes/µs
    /// (3 GB/s — both directions traverse the same PCIe interface).
    pub hca_loopback_bw: u64,
    /// Effective inter-host FDR bandwidth, bytes/µs (5.9 GB/s of the
    /// 56 Gb/s raw link).
    pub hca_link_bw: u64,
    /// Completion-queue poll + completion handling per message, ns.
    pub hca_completion_ns: u64,
    /// One-time bookkeeping for an HCA rendezvous transfer (RTS handling,
    /// rkey exchange, registration cache lookup), ns. Together with the
    /// RTS/CTS round trip this sets the Fig. 7(c) eager/rendezvous
    /// crossover near 17 KiB.
    pub hca_rndv_setup_ns: u64,

    // ---- runtime -----------------------------------------------------------
    /// Cost of one MPI_Test / progress poll that finds nothing, ns.
    pub poll_ns: u64,
    /// Per-MPI-call overhead added inside a container (namespace
    /// indirection, cgroup accounting), ns. Zero in the native scenario;
    /// this is why the locality-aware library is ~5 % off native instead
    /// of identical.
    pub container_overhead_ns: u64,
    /// Request allocation / matching-engine bookkeeping per message, ns.
    pub request_ns: u64,
    /// Origin-side bookkeeping per one-sided operation on a local (SHM or
    /// CMA) window path: epoch tracking, target displacement computation,
    /// ns. Calibrated so a 4-byte SHM put costs ~0.21 µs like the paper's
    /// native measurement (155 Mbps at 4 B).
    pub onesided_local_op_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            copy_bw: 10_000,
            shm_copy_bw: 8_000,
            inter_socket_num: 14,
            inter_socket_den: 10,
            cache_threshold: 256 * 1024,
            cache_penalty_num: 19,
            cache_penalty_den: 10,
            shm_post_ns: 60,
            shm_wakeup_ns: 40,
            shm_match_ns: 50,
            cma_syscall_ns: 800,
            hca_post_ns: 150,
            hca_loopback_latency_ns: 1_300,
            hca_wire_latency_ns: 1_100,
            hca_loopback_bw: 3_000,
            hca_link_bw: 5_900,
            hca_completion_ns: 200,
            hca_rndv_setup_ns: 800,
            poll_ns: 30,
            container_overhead_ns: 15,
            request_ns: 25,
            onesided_local_op_ns: 120,
        }
    }
}

impl CostModel {
    /// Time to move `bytes` at `bw` bytes/µs (exact integer ns, rounded up).
    #[inline]
    pub fn xfer(bytes: u64, bw: u64) -> SimTime {
        debug_assert!(bw > 0);
        SimTime::from_ns((bytes * 1_000).div_ceil(bw))
    }

    /// Apply the inter-socket multiplier to a cost.
    #[inline]
    pub fn socketize(&self, t: SimTime, cross_socket: bool) -> SimTime {
        if cross_socket {
            SimTime::from_ns(t.as_ns() * self.inter_socket_num / self.inter_socket_den)
        } else {
            t
        }
    }

    /// A plain single copy of `bytes` (CMA, eager-buffer staging).
    #[inline]
    pub fn copy_time(&self, bytes: u64, cross_socket: bool) -> SimTime {
        self.socketize(Self::xfer(bytes, self.copy_bw), cross_socket)
    }

    /// One side's copy of `bytes` through a shared SHM queue whose total
    /// capacity is `queue_capacity` bytes. Footprints beyond
    /// [`CostModel::cache_threshold`] pay the cache penalty — this is the
    /// mechanism behind the Fig. 7(b) optimum.
    #[inline]
    pub fn shm_copy_time(&self, bytes: u64, queue_capacity: u64, cross_socket: bool) -> SimTime {
        let base = Self::xfer(bytes, self.shm_copy_bw);
        let base = if queue_capacity > self.cache_threshold {
            SimTime::from_ns(base.as_ns() * self.cache_penalty_num / self.cache_penalty_den)
        } else {
            base
        };
        self.socketize(base, cross_socket)
    }

    /// CMA single-copy transfer cost (syscall + copy).
    #[inline]
    pub fn cma_time(&self, bytes: u64, cross_socket: bool) -> SimTime {
        SimTime::from_ns(self.cma_syscall_ns) + self.copy_time(bytes, cross_socket)
    }

    /// One-way HCA latency for the given host relationship.
    #[inline]
    pub fn hca_latency(&self, same_host: bool) -> SimTime {
        SimTime::from_ns(if same_host {
            self.hca_loopback_latency_ns
        } else {
            self.hca_wire_latency_ns
        })
    }

    /// HCA serialization time of `bytes` on the wire.
    #[inline]
    pub fn hca_wire_time(&self, bytes: u64, same_host: bool) -> SimTime {
        Self::xfer(
            bytes,
            if same_host {
                self.hca_loopback_bw
            } else {
                self.hca_link_bw
            },
        )
    }

    /// Per-call container tax (zero when `in_container` is false).
    #[inline]
    pub fn container_tax(&self, in_container: bool) -> SimTime {
        SimTime::from_ns(if in_container {
            self.container_overhead_ns
        } else {
            0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xfer_rounds_up_and_scales() {
        // 1 byte at 10 GB/s (10_000 bytes/us) is 0.1ns -> rounds to 1ns.
        assert_eq!(CostModel::xfer(1, 10_000).as_ns(), 1);
        // 10 KB at 10 GB/s is exactly 1_000ns.
        assert_eq!(CostModel::xfer(10_000, 10_000).as_ns(), 1_000);
        // Doubling size doubles time (modulo ceil).
        assert_eq!(CostModel::xfer(20_000, 10_000).as_ns(), 2_000);
    }

    #[test]
    fn inter_socket_costs_more() {
        let m = CostModel::default();
        let near = m.copy_time(1 << 20, false);
        let far = m.copy_time(1 << 20, true);
        assert!(far > near);
        assert_eq!(far.as_ns(), near.as_ns() * 14 / 10);
    }

    #[test]
    fn oversized_queue_pays_cache_penalty() {
        let m = CostModel::default();
        let fit = m.shm_copy_time(8 << 10, 128 << 10, false);
        let burst = m.shm_copy_time(8 << 10, 1 << 20, false);
        assert!(burst > fit);
        assert_eq!(burst.as_ns(), fit.as_ns() * 19 / 10);
    }

    #[test]
    fn cma_beats_double_shm_copy_above_8k() {
        // The Fig. 3(b) / Fig. 7(a) crossover: CMA's syscall overhead loses
        // below ~8 KiB, its single copy wins above.
        let m = CostModel::default();
        let shm_side = |b: u64| m.shm_copy_time(b, 128 << 10, false) * 2;
        let small = 2 << 10;
        let large = 16 << 10;
        assert!(m.cma_time(small, false) > shm_side(small));
        assert!(m.cma_time(large, false) < shm_side(large));
    }

    #[test]
    fn hca_loopback_is_slower_than_wire_bandwidth() {
        let m = CostModel::default();
        assert!(m.hca_wire_time(1 << 20, true) > m.hca_wire_time(1 << 20, false));
        assert!(m.hca_latency(true) > m.hca_latency(false));
    }

    #[test]
    fn shm_1kib_latency_matches_paper_scale() {
        // Paper: locality-aware intra-socket 1 KiB latency ~0.47us, default
        // (HCA loopback) ~2.26us. Verify our composed one-way costs land in
        // those neighbourhoods (±20%).
        let m = CostModel::default();
        let shm = m.shm_post_ns
            + m.shm_wakeup_ns
            + m.shm_match_ns
            + 2 * m.shm_copy_time(1024, 128 << 10, false).as_ns()
            + 2 * m.container_overhead_ns
            + 2 * m.request_ns;
        assert!((350..620).contains(&shm), "shm 1KiB one-way = {shm}ns");
        let hca = m.hca_post_ns
            + m.hca_loopback_latency_ns
            + m.hca_wire_time(1024, true).as_ns()
            + 2 * m.copy_time(1024, false).as_ns()
            + m.hca_completion_ns
            + 2 * m.container_overhead_ns
            + 2 * m.request_ns;
        assert!((1_900..2_700).contains(&hca), "hca 1KiB one-way = {hca}ns");
    }

    #[test]
    fn container_tax_only_in_containers() {
        let m = CostModel::default();
        assert_eq!(m.container_tax(false), SimTime::ZERO);
        assert_eq!(m.container_tax(true).as_ns(), 15);
    }
}
