//! Runtime tunables — the MVAPICH2 environment variables the paper sweeps
//! in Section IV-C/D (Fig. 7).

/// Protocol switch points and buffer sizes, named after the MVAPICH2
/// environment variables they model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Tunables {
    /// `SMP_EAGER_SIZE`: messages up to this size between co-resident ranks
    /// use the SHM eager protocol; larger ones use CMA rendezvous.
    /// Paper-tuned optimum for containers: 8 KiB (Fig. 7(a)).
    pub smp_eager_size: usize,
    /// `SMPI_LENGTH_QUEUE`: capacity in bytes of the shared eager queue
    /// between each pair of co-resident ranks. Paper-tuned optimum:
    /// 128 KiB (Fig. 7(b)).
    pub smpi_length_queue: usize,
    /// `MV2_IBA_EAGER_THRESHOLD`: messages up to this size on the HCA
    /// channel use the eager protocol (copy through pre-registered
    /// buffers); larger ones use RTS/CTS rendezvous with zero-copy RDMA.
    /// Paper-tuned optimum for containers: 17 KiB (Fig. 7(c)).
    pub mv2_iba_eager_threshold: usize,
    /// `MV2_USE_SMP_COLL`: allow the collective selector to pick the
    /// two-level (leader-staged) algorithms when the locality policy
    /// exposes a multi-group topology. Disabling forces the flat
    /// algorithms everywhere (the ablation baseline).
    pub smp_coll_enable: bool,
    /// `MV2_SMP_BCAST_THRESHOLD`: broadcasts up to this size (bytes) are
    /// eligible for the two-level algorithm; larger ones stay flat until
    /// the large-message switchover takes them.
    pub smp_bcast_threshold: usize,
    /// `MV2_SMP_ALLREDUCE_THRESHOLD`: allreduces up to this size (bytes)
    /// are eligible for the two-level algorithm.
    pub smp_allreduce_threshold: usize,
    /// `MV2_COLL_LARGE_MSG`: at and above this size (bytes) the
    /// bandwidth-optimal algorithms take over (scatter–allgather
    /// broadcast; Rabenseifner allreduce on power-of-two groups).
    pub coll_large_msg: usize,
}

impl Default for Tunables {
    /// The *container-tuned* settings from Section IV (the "Opt"
    /// configuration).
    fn default() -> Self {
        Tunables {
            smp_eager_size: 8 * 1024,
            smpi_length_queue: 128 * 1024,
            mv2_iba_eager_threshold: 17 * 1024,
            smp_coll_enable: true,
            smp_bcast_threshold: 64 * 1024,
            smp_allreduce_threshold: 64 * 1024,
            coll_large_msg: 256 * 1024,
        }
    }
}

impl Tunables {
    /// The stock MVAPICH2 native-environment defaults the paper starts
    /// from before tuning (eager switch 16 KiB on SHM, 64 KiB queue,
    /// 12 KiB IB eager threshold).
    pub fn stock() -> Self {
        Tunables {
            smp_eager_size: 16 * 1024,
            smpi_length_queue: 64 * 1024,
            mv2_iba_eager_threshold: 12 * 1024,
            smp_coll_enable: true,
            smp_bcast_threshold: 64 * 1024,
            smp_allreduce_threshold: 64 * 1024,
            coll_large_msg: 256 * 1024,
        }
    }

    /// Builder-style override of `SMP_EAGER_SIZE`.
    pub fn with_smp_eager_size(mut self, v: usize) -> Self {
        self.smp_eager_size = v;
        self
    }

    /// Builder-style override of `SMPI_LENGTH_QUEUE`.
    pub fn with_smpi_length_queue(mut self, v: usize) -> Self {
        self.smpi_length_queue = v;
        self
    }

    /// Builder-style override of `MV2_IBA_EAGER_THRESHOLD`.
    pub fn with_iba_eager_threshold(mut self, v: usize) -> Self {
        self.mv2_iba_eager_threshold = v;
        self
    }

    /// Builder-style override of `MV2_USE_SMP_COLL`.
    pub fn with_smp_coll_enable(mut self, v: bool) -> Self {
        self.smp_coll_enable = v;
        self
    }

    /// Builder-style override of `MV2_SMP_BCAST_THRESHOLD`.
    pub fn with_smp_bcast_threshold(mut self, v: usize) -> Self {
        self.smp_bcast_threshold = v;
        self
    }

    /// Builder-style override of `MV2_SMP_ALLREDUCE_THRESHOLD`.
    pub fn with_smp_allreduce_threshold(mut self, v: usize) -> Self {
        self.smp_allreduce_threshold = v;
        self
    }

    /// Builder-style override of `MV2_COLL_LARGE_MSG`.
    pub fn with_coll_large_msg(mut self, v: usize) -> Self {
        self.coll_large_msg = v;
        self
    }

    /// Sanity-check invariants assumed by the channel implementations.
    ///
    /// The eager queue must be able to hold at least one maximal eager
    /// message, otherwise the SHM channel could deadlock.
    pub fn validate(&self) -> Result<(), String> {
        if self.smp_eager_size == 0 {
            return Err("SMP_EAGER_SIZE must be positive".into());
        }
        if self.smpi_length_queue < self.smp_eager_size {
            return Err(format!(
                "SMPI_LENGTH_QUEUE ({}) must be >= SMP_EAGER_SIZE ({})",
                self.smpi_length_queue, self.smp_eager_size
            ));
        }
        if self.mv2_iba_eager_threshold == 0 {
            return Err("MV2_IBA_EAGER_THRESHOLD must be positive".into());
        }
        if self.coll_large_msg == 0 {
            return Err("MV2_COLL_LARGE_MSG must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_optima() {
        let t = Tunables::default();
        assert_eq!(t.smp_eager_size, 8 * 1024);
        assert_eq!(t.smpi_length_queue, 128 * 1024);
        assert_eq!(t.mv2_iba_eager_threshold, 17 * 1024);
        assert!(t.smp_coll_enable);
        assert_eq!(t.smp_bcast_threshold, 64 * 1024);
        assert_eq!(t.smp_allreduce_threshold, 64 * 1024);
        assert_eq!(t.coll_large_msg, 256 * 1024);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn stock_differs_from_tuned() {
        assert_ne!(Tunables::stock(), Tunables::default());
        assert!(Tunables::stock().validate().is_ok());
    }

    #[test]
    fn builders_override() {
        let t = Tunables::default()
            .with_smp_eager_size(4096)
            .with_smpi_length_queue(32 * 1024)
            .with_iba_eager_threshold(13 * 1024);
        assert_eq!(t.smp_eager_size, 4096);
        assert_eq!(t.smpi_length_queue, 32 * 1024);
        assert_eq!(t.mv2_iba_eager_threshold, 13 * 1024);
    }

    #[test]
    fn validation_rejects_undersized_queue() {
        let t = Tunables::default().with_smpi_length_queue(1024);
        assert!(t.validate().is_err());
        let t = Tunables::default().with_smp_eager_size(0);
        assert!(t.validate().is_err());
    }

    #[test]
    fn collective_builders_override() {
        let t = Tunables::default()
            .with_smp_coll_enable(false)
            .with_smp_bcast_threshold(4096)
            .with_smp_allreduce_threshold(2048)
            .with_coll_large_msg(1 << 20);
        assert!(!t.smp_coll_enable);
        assert_eq!(t.smp_bcast_threshold, 4096);
        assert_eq!(t.smp_allreduce_threshold, 2048);
        assert_eq!(t.coll_large_msg, 1 << 20);
        assert!(t.validate().is_ok());
        // Zero thresholds merely disable the two-level paths; a zero
        // large-message switchover is a configuration error.
        assert!(Tunables::default()
            .with_smp_bcast_threshold(0)
            .validate()
            .is_ok());
        assert!(Tunables::default()
            .with_coll_large_msg(0)
            .validate()
            .is_err());
    }
}
