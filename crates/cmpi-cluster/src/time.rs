//! Virtual time.
//!
//! Every MPI rank in the simulation owns a logical clock expressed as a
//! [`SimTime`]. Channel operations advance the clock through the cost model;
//! messages carry availability timestamps so causality propagates between
//! ranks exactly like wall-clock time would on real hardware, but fully
//! deterministically.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp (nanoseconds since job
/// start) and as a duration; the arithmetic provided covers both uses.
/// Using integer nanoseconds keeps every computation exactly reproducible
/// across platforms — no floating-point accumulation drift.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero timestamp (job start).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds as a raw integer.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (for reporting; never used in accounting).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds as a float (for reporting; never used in accounting).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds as a float (for reporting; never used in accounting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two timestamps.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Saturating subtraction — the difference of two timestamps, clamped
    /// at zero when `other` is later than `self`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// `true` when the timestamp is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(40);
        assert_eq!((a + b).as_ns(), 140);
        assert_eq!((a - b).as_ns(), 60);
        assert_eq!((a * 3).as_ns(), 300);
        assert_eq!((a / 4).as_ns(), 25);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn float_views_are_consistent() {
        let t = SimTime::from_ns(1_500);
        assert!((t.as_us_f64() - 1.5).abs() < 1e-12);
        let t = SimTime::from_ns(2_500_000);
        assert!((t.as_ms_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_ns(1_200)), "1.200us");
        assert_eq!(format!("{}", SimTime::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(4)), "4.000s");
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total.as_ns(), 10);
    }
}
