//! # cmpi-fabric — simulated InfiniBand verbs
//!
//! A stand-in for `libibverbs` + a Mellanox ConnectX-3 FDR fabric, shaped
//! so the MPI library's HCA channel code keeps the structure it has in
//! MVAPICH2:
//!
//! * every rank **attaches** an endpoint (≈ opening the HCA and creating a
//!   reliable-connection QP per peer) — this requires the container to run
//!   `--privileged`, exactly like PCI passthrough in the paper
//!   (Section II-B);
//! * **two-sided** traffic is `post_send` / `poll_recv` with an immediate
//!   value for protocol dispatch;
//! * **one-sided** traffic is `rdma_write` / `rdma_read` against registered
//!   [`MemoryRegion`]s addressed by rkey — the zero-copy rendezvous path;
//! * every operation returns the virtual timestamps implied by the
//!   [`CostModel`]: when the sender's clock may proceed and when the data
//!   is observable remotely. Loopback (same-host) traffic pays the
//!   adapter's loopback latency and reduced bandwidth — the performance
//!   cliff at the heart of the paper's bottleneck analysis (Fig. 3).
//!
//! Flow control is modelled as infinite eager credits: the paper's
//! experiments never exhaust MVAPICH2's credit window, so we document the
//! simplification instead of simulating it.

#![deny(unsafe_op_in_unsafe_fn)]
pub mod endpoint;
pub mod mr;

pub use endpoint::{Fabric, FabricError, FabricMsg, InlineHdr, RdmaCompletion, SendInfo};
pub use mr::{MemoryRegion, RKey};
