//! Fabric endpoints: attach, two-sided send/recv, RDMA.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use cmpi_cluster::{CostModel, FaultPlan, HostId, SimTime};
// Per-endpoint state is shim-synchronized so the model checker can
// explore the pending-hint protocol; fabric-global maps stay on plain
// locks (their critical sections contain no model-visible operations).
use cmpi_model::sync::{AtomicUsize, Mutex, Ordering};
use parking_lot::{Mutex as PlainMutex, RwLock};

use crate::mr::{MemoryRegion, RKey};

/// Errors surfaced by the fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FabricError {
    /// The container was not started `--privileged`, so the HCA device is
    /// not visible inside it.
    NotPrivileged,
    /// The rank never attached an endpoint.
    NotAttached(usize),
    /// Unknown remote key.
    BadRKey,
    /// Queue-pair creation failed transiently during attach (injected:
    /// resource exhaustion on the adapter). Retrying the attach succeeds
    /// once the rank's failure budget is spent.
    QpCreationFailed(usize),
    /// A posted send completed in error (injected: transient CQE error).
    /// The payload was *not* delivered; the caller may repost.
    TransientCompletion {
        /// Sending rank.
        src: usize,
        /// Intended receiver.
        dst: usize,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::NotPrivileged => {
                write!(f, "HCA not accessible: container lacks --privileged")
            }
            FabricError::NotAttached(r) => write!(f, "rank {r} has no fabric endpoint"),
            FabricError::BadRKey => write!(f, "invalid remote key"),
            FabricError::QpCreationFailed(r) => {
                write!(f, "transient QP creation failure for rank {r}")
            }
            FabricError::TransientCompletion { src, dst } => {
                write!(f, "send {src}->{dst} completed in error (transient)")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Capacity of [`InlineHdr`] — covers every protocol header the MPI
/// layer frames, with slack for future fields.
pub const INLINE_HDR_MAX: usize = 40;

/// A small fixed-capacity header that rides alongside a two-sided
/// message without heap allocation — the analogue of a WQE's inline
/// data segment, which verbs implementations use for exactly this kind
/// of protocol framing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InlineHdr {
    buf: [u8; INLINE_HDR_MAX],
    len: u8,
}

impl Default for InlineHdr {
    fn default() -> Self {
        InlineHdr {
            buf: [0; INLINE_HDR_MAX],
            len: 0,
        }
    }
}

impl InlineHdr {
    /// Copy `bytes` into an inline header.
    ///
    /// # Panics
    /// Panics if `bytes` exceeds [`INLINE_HDR_MAX`].
    pub fn new(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= INLINE_HDR_MAX,
            "inline header of {} bytes exceeds the {INLINE_HDR_MAX}-byte segment",
            bytes.len()
        );
        let mut h = InlineHdr {
            buf: [0; INLINE_HDR_MAX],
            len: bytes.len() as u8,
        };
        h.buf[..bytes.len()].copy_from_slice(bytes);
        h
    }

    /// The header bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }

    /// Header length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the header is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An incoming two-sided message.
#[derive(Clone, Debug)]
pub struct FabricMsg {
    /// Source rank.
    pub src: usize,
    /// Immediate value (protocol dispatch tag).
    pub imm: u32,
    /// Inline protocol header (empty for sends posted without one).
    pub hdr: InlineHdr,
    /// Payload.
    pub data: Bytes,
    /// Virtual time at which the message is observable at the receiver.
    pub available_at: SimTime,
}

/// Timing of a completed `post_send`.
#[derive(Clone, Copy, Debug)]
pub struct SendInfo {
    /// When the sender's clock may proceed (WQE posted, doorbell rung).
    pub local_done: SimTime,
    /// When the payload is observable at the receiver.
    pub delivered_at: SimTime,
}

/// Timing of a completed RDMA operation.
#[derive(Clone, Copy, Debug)]
pub struct RdmaCompletion {
    /// When the initiator's completion-queue entry is observable.
    pub completed_at: SimTime,
    /// When the data is in place at its destination.
    pub data_at: SimTime,
}

/// Per-rank counters (diagnostics and the fabric's own tests; the MPI
/// library keeps its own per-channel statistics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Two-sided messages sent.
    pub sends: u64,
    /// Two-sided bytes sent.
    pub send_bytes: u64,
    /// Two-sided messages drained by this rank's progress engine.
    pub recvs: u64,
    /// Two-sided bytes drained.
    pub recv_bytes: u64,
    /// RDMA operations initiated.
    pub rdma_ops: u64,
    /// RDMA bytes moved.
    pub rdma_bytes: u64,
}

/// Fault-injection bookkeeping for one sender: which send operation is
/// next and how many times its posting has already failed.
#[derive(Default)]
struct SendProgress {
    op_index: u64,
    attempts: u32,
}

struct Endpoint {
    host: HostId,
    incoming: Mutex<Vec<FabricMsg>>,
    /// Length of `incoming`, maintained under its lock. The progress
    /// engine polls every rank on every pass; the counter lets an empty
    /// poll — the overwhelmingly common case — return after one relaxed
    /// load instead of taking the lock.
    pending: AtomicUsize,
    notifier: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
    stats: Mutex<EndpointStats>,
    send_progress: Mutex<SendProgress>,
}

impl Endpoint {
    fn notify(&self) {
        // Clone out and drop the lock before invoking: the callback pokes
        // the rank's mailbox, which must not run under this lock.
        let n = self.notifier.lock().clone();
        if let Some(n) = n {
            n();
        }
    }
}

/// The cluster-wide fabric: switch + one HCA per host, endpoints per rank.
///
/// Transfers occupy the wire. Every adapter path (a host's loopback, an
/// endpoint's egress, an endpoint's ingress) carries an interval-based
/// [`LinkSchedule`]: a transfer reserves the first gap at or after its
/// virtual ready time that fits its serialization time. Interval
/// reservation (rather than a busy-until high-water mark) matters because
/// transfers are *committed* in real-thread order, which can invert their
/// virtual timestamps — an early-stamped transfer must slot into the gap
/// before a future-stamped reservation instead of queueing behind it,
/// otherwise real scheduling would leak into virtual time. Residual
/// nondeterminism is bounded by genuine contention (the same ambiguity a
/// real arbiter has), not by thread scheduling.
pub struct Fabric {
    cost: CostModel,
    faults: FaultPlan,
    /// Rank-indexed endpoint table. Reads vastly outnumber attaches (one
    /// lookup per progress pass and per posted op vs. one insert per rank
    /// at init), so this is a read-write lock over a dense slot vector
    /// rather than a mutex-guarded map: lookups take the uncontended read
    /// path and never hash.
    endpoints: RwLock<Vec<Option<Arc<Endpoint>>>>,
    mrs: PlainMutex<HashMap<RKey, Arc<MemoryRegion>>>,
    next_rkey: PlainMutex<u64>,
    links: PlainMutex<HashMap<LinkKey, LinkSchedule>>,
    /// Remaining injected attach failures per rank (consumed by retries).
    attach_budget: PlainMutex<HashMap<usize, u32>>,
}

/// One contended adapter path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum LinkKey {
    /// A host's single adapter handling same-host (loopback) traffic.
    Loopback(HostId),
    /// A rank endpoint's transmit path (cross-host).
    Egress(usize),
    /// A rank endpoint's receive path (cross-host).
    Ingress(usize),
}

/// Non-overlapping busy intervals, keyed by start time.
#[derive(Default, Debug)]
struct LinkSchedule {
    busy: BTreeMap<u64, u64>,
}

impl LinkSchedule {
    /// Reserve the first `dur`-long gap starting at or after `ready`;
    /// returns the transfer's start time.
    fn reserve(&mut self, ready: SimTime, dur: SimTime) -> SimTime {
        let d = dur.as_ns();
        if d == 0 {
            return ready;
        }
        let mut t = ready.as_ns();
        loop {
            if let Some((_, &e)) = self.busy.range(..=t).next_back() {
                if e > t {
                    t = e;
                    continue;
                }
            }
            if let Some((&s, &e)) = self.busy.range(t..).next() {
                if s < t + d {
                    t = e;
                    continue;
                }
            }
            break;
        }
        self.busy.insert(t, t + d);
        SimTime::from_ns(t)
    }
}

impl Fabric {
    /// Build a fault-free fabric with the given cost model.
    pub fn new(cost: CostModel) -> Arc<Self> {
        Self::with_faults(cost, FaultPlan::none())
    }

    /// Build a fabric whose attach/send paths inject the transient faults
    /// described by `plan`. Injection is a pure function of the plan and
    /// per-endpoint operation counters, so runs are deterministic.
    pub fn with_faults(cost: CostModel, plan: FaultPlan) -> Arc<Self> {
        Arc::new(Fabric {
            cost,
            faults: plan,
            endpoints: RwLock::new(Vec::new()),
            mrs: PlainMutex::new(HashMap::new()),
            next_rkey: PlainMutex::new(1),
            links: PlainMutex::new(HashMap::new()),
            attach_budget: PlainMutex::new(HashMap::new()),
        })
    }

    /// The fabric's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Attach rank `rank` running on `host`. Fails unless the rank's
    /// container can see the HCA (`privileged`). With an active fault
    /// plan, the first `attach_failures(rank)` calls fail with
    /// [`FabricError::QpCreationFailed`]; subsequent retries succeed.
    pub fn attach(&self, rank: usize, host: HostId, privileged: bool) -> Result<(), FabricError> {
        if !privileged {
            return Err(FabricError::NotPrivileged);
        }
        {
            let mut budget = self.attach_budget.lock();
            let left = budget
                .entry(rank)
                .or_insert_with(|| self.faults.attach_failures(rank));
            if *left > 0 {
                *left -= 1;
                return Err(FabricError::QpCreationFailed(rank));
            }
        }
        let mut eps = self.endpoints.write();
        if eps.len() <= rank {
            eps.resize_with(rank + 1, || None);
        }
        eps[rank] = Some(Arc::new(Endpoint {
            host,
            incoming: Mutex::new(Vec::new()),
            pending: AtomicUsize::new(0),
            notifier: Mutex::new(None),
            stats: Mutex::new(EndpointStats::default()),
            send_progress: Mutex::new(SendProgress::default()),
        }));
        Ok(())
    }

    /// Tear down `rank`'s endpoint (the QP-destroy a dying rank — or its
    /// container's OOM killer — performs). Subsequent sends addressed to
    /// the rank fail with [`FabricError::NotAttached`]; packets already
    /// delivered to its receive queue are dropped with the endpoint.
    /// Detaching a never-attached rank is a no-op.
    pub fn detach(&self, rank: usize) {
        let mut eps = self.endpoints.write();
        if let Some(slot) = eps.get_mut(rank) {
            *slot = None;
        }
    }

    /// Register a wake-up callback invoked whenever a message lands in
    /// `rank`'s receive queue (the MPI progress engine's interrupt).
    pub fn set_notifier(&self, rank: usize, f: Arc<dyn Fn() + Send + Sync>) {
        if let Ok(ep) = self.ep(rank) {
            *ep.notifier.lock() = Some(f);
        }
    }

    fn ep(&self, rank: usize) -> Result<Arc<Endpoint>, FabricError> {
        self.endpoints
            .read()
            .get(rank)
            .and_then(Option::as_ref)
            .cloned()
            .ok_or(FabricError::NotAttached(rank))
    }

    /// Schedule `bytes` from `src_rank` to `dst_rank`, no earlier than
    /// `ready`: reserves wire occupancy on every adapter path the
    /// transfer crosses and returns the delivery time.
    fn schedule(
        &self,
        src: &Endpoint,
        dst: &Endpoint,
        src_rank: usize,
        dst_rank: usize,
        bytes: u64,
        ready: SimTime,
    ) -> SimTime {
        let same_host = src.host == dst.host;
        let wire = self.cost.hca_wire_time(bytes, same_host);
        let latency = self.cost.hca_latency(same_host);
        let mut links = self.links.lock();
        if same_host {
            // Loopback: both directions contend for the one adapter.
            let start = links
                .entry(LinkKey::Loopback(src.host))
                .or_default()
                .reserve(ready, wire);
            start + wire + latency
        } else {
            let start = links
                .entry(LinkKey::Egress(src_rank))
                .or_default()
                .reserve(ready, wire);
            let arrive = start + latency;
            let start2 = links
                .entry(LinkKey::Ingress(dst_rank))
                .or_default()
                .reserve(arrive, wire);
            start2 + wire
        }
    }

    /// `true` when both endpoints hang off the same host's HCA (loopback).
    pub fn same_host(&self, a: usize, b: usize) -> Result<bool, FabricError> {
        Ok(self.ep(a)?.host == self.ep(b)?.host)
    }

    /// Post a two-sided send of `data` from `src` to `dst` at virtual time
    /// `now`.
    pub fn post_send(
        &self,
        src: usize,
        dst: usize,
        imm: u32,
        data: Bytes,
        now: SimTime,
    ) -> Result<SendInfo, FabricError> {
        self.post_send_parts(src, dst, imm, &[], data, now)
    }

    /// Post a two-sided send framed as an inline protocol header plus a
    /// payload that travels by reference. The header rides in the WQE's
    /// inline segment ([`InlineHdr`]); the payload `Bytes` is adopted
    /// whole, so the upper layer never copies it into a contiguous
    /// frame. Wire cost and byte accounting cover both parts.
    pub fn post_send_parts(
        &self,
        src: usize,
        dst: usize,
        imm: u32,
        hdr: &[u8],
        data: Bytes,
        now: SimTime,
    ) -> Result<SendInfo, FabricError> {
        let s = self.ep(src)?;
        let d = self.ep(dst)?;
        {
            let mut prog = s.send_progress.lock();
            if self.faults.send_fails(prog.op_index, prog.attempts) {
                // Completed-in-error CQE: count the failed attempt, keep
                // the op index so the repost targets the same operation.
                prog.attempts += 1;
                return Err(FabricError::TransientCompletion { src, dst });
            }
            prog.op_index += 1;
            prog.attempts = 0;
        }
        let wire_len = (hdr.len() + data.len()) as u64;
        let local_done = now + SimTime::from_ns(self.cost.hca_post_ns);
        let delivered_at = self.schedule(&s, &d, src, dst, wire_len, local_done);
        {
            let mut st = s.stats.lock();
            st.sends += 1;
            st.send_bytes += wire_len;
        }
        {
            let mut q = d.incoming.lock();
            q.push(FabricMsg {
                src,
                imm,
                hdr: InlineHdr::new(hdr),
                data,
                available_at: delivered_at,
            });
            // Release pairs with poll_recv's Acquire fast-path load: a
            // poller that observes this count also observes the pushed
            // message when it takes the lock. The store sits under the
            // lock, so it can never be reordered with a concurrent
            // drain's reset (the model checker verifies the protocol:
            // `tests::model::pending_hint_never_loses_a_message`).
            d.pending.store(q.len(), Ordering::Release);
        }
        d.notify();
        Ok(SendInfo {
            local_done,
            delivered_at,
        })
    }

    /// Drain `rank`'s receive queue (ordered by arrival).
    pub fn poll_recv(&self, rank: usize) -> Result<Vec<FabricMsg>, FabricError> {
        let ep = self.ep(rank)?;
        // Fast path: nothing has landed since the last drain. A racing
        // post is not lost — it raises `pending` and fires the rank's
        // notifier, so the next poll sees it. The hint may err only
        // toward "something pending" (a stale zero is repaired by the
        // notifier; a stale nonzero just takes the lock and finds the
        // queue empty), which is why the early return is safe.
        if ep.pending.load(Ordering::Acquire) == 0 {
            return Ok(Vec::new());
        }
        let msgs = {
            let mut q = ep.incoming.lock();
            ep.pending.store(0, Ordering::Release);
            std::mem::take(&mut *q)
        };
        if !msgs.is_empty() {
            let mut st = ep.stats.lock();
            st.recvs += msgs.len() as u64;
            st.recv_bytes += msgs
                .iter()
                .map(|m| (m.hdr.len() + m.data.len()) as u64)
                .sum::<u64>();
        }
        Ok(msgs)
    }

    /// Register `len` bytes of `rank`'s memory for remote access.
    pub fn register_mr(&self, rank: usize, len: usize) -> Result<Arc<MemoryRegion>, FabricError> {
        self.ep(rank)?; // must be attached
        let mut next = self.next_rkey.lock();
        let rkey = RKey(*next);
        *next += 1;
        let mr = Arc::new(MemoryRegion::new(rkey, rank, len));
        self.mrs.lock().insert(rkey, Arc::clone(&mr));
        Ok(mr)
    }

    /// Look up a registered region by rkey.
    pub fn mr(&self, rkey: RKey) -> Result<Arc<MemoryRegion>, FabricError> {
        self.mrs
            .lock()
            .get(&rkey)
            .cloned()
            .ok_or(FabricError::BadRKey)
    }

    /// One-sided RDMA write: place `data` into `(rkey, offset)` with no
    /// target-side involvement.
    pub fn rdma_write(
        &self,
        src: usize,
        rkey: RKey,
        offset: usize,
        data: &[u8],
        now: SimTime,
    ) -> Result<RdmaCompletion, FabricError> {
        let s = self.ep(src)?;
        let mr = self.mr(rkey)?;
        let d = self.ep(mr.owner())?;
        let same_host = s.host == d.host;
        let posted = now + SimTime::from_ns(self.cost.hca_post_ns);
        let data_at = self.schedule(&s, &d, src, mr.owner(), data.len() as u64, posted);
        // RC write completion: the ack returns after the data hit the wire.
        let completed_at = data_at
            + self.cost.hca_latency(same_host)
            + SimTime::from_ns(self.cost.hca_completion_ns);
        mr.write(offset, data);
        let mut st = s.stats.lock();
        st.rdma_ops += 1;
        st.rdma_bytes += data.len() as u64;
        Ok(RdmaCompletion {
            completed_at,
            data_at,
        })
    }

    /// One-sided RDMA read: fetch `len` bytes from `(rkey, offset)` with no
    /// target-side involvement.
    pub fn rdma_read(
        &self,
        src: usize,
        rkey: RKey,
        offset: usize,
        len: usize,
        now: SimTime,
    ) -> Result<(Vec<u8>, RdmaCompletion), FabricError> {
        let s = self.ep(src)?;
        let mr = self.mr(rkey)?;
        let d = self.ep(mr.owner())?;
        let same_host = s.host == d.host;
        let posted = now + SimTime::from_ns(self.cost.hca_post_ns);
        // The request travels one way; the data streams back through the
        // owner's adapter.
        let request_at = posted + self.cost.hca_latency(same_host);
        let data_at = self.schedule(&d, &s, mr.owner(), src, len as u64, request_at);
        let completed_at = data_at + SimTime::from_ns(self.cost.hca_completion_ns);
        let data = mr.read(offset, len);
        let mut st = s.stats.lock();
        st.rdma_ops += 1;
        st.rdma_bytes += len as u64;
        Ok((
            data,
            RdmaCompletion {
                completed_at,
                data_at,
            },
        ))
    }

    /// Per-rank counters.
    pub fn stats(&self, rank: usize) -> Result<EndpointStats, FabricError> {
        Ok(*self.ep(rank)?.stats.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fabric_two_hosts() -> Arc<Fabric> {
        let f = Fabric::new(CostModel::default());
        f.attach(0, HostId(0), true).unwrap();
        f.attach(1, HostId(0), true).unwrap();
        f.attach(2, HostId(1), true).unwrap();
        f
    }

    #[test]
    fn unprivileged_container_cannot_attach() {
        let f = Fabric::new(CostModel::default());
        assert_eq!(
            f.attach(0, HostId(0), false),
            Err(FabricError::NotPrivileged)
        );
    }

    #[test]
    fn send_delivers_payload_with_timestamps() {
        let f = fabric_two_hosts();
        let info = f
            .post_send(0, 2, 7, Bytes::from_static(b"hello"), SimTime::from_us(1))
            .unwrap();
        assert!(info.local_done > SimTime::from_us(1));
        assert!(info.delivered_at > info.local_done);
        let msgs = f.poll_recv(2).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].src, 0);
        assert_eq!(msgs[0].imm, 7);
        assert_eq!(&msgs[0].data[..], b"hello");
        assert_eq!(msgs[0].available_at, info.delivered_at);
        // Queue drained.
        assert!(f.poll_recv(2).unwrap().is_empty());
    }

    #[test]
    fn loopback_is_slower_than_cross_host() {
        // The paper's central observation: intra-host HCA traffic pays the
        // adapter loopback penalty.
        let f = fabric_two_hosts();
        let data = Bytes::from(vec![0u8; 64 * 1024]);
        let loopback = f.post_send(0, 1, 0, data.clone(), SimTime::ZERO).unwrap();
        let wire = f.post_send(0, 2, 0, data, SimTime::ZERO).unwrap();
        assert!(loopback.delivered_at > wire.delivered_at);
    }

    #[test]
    fn notifier_fires_on_delivery() {
        let f = fabric_two_hosts();
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        f.set_notifier(
            1,
            Arc::new(move || {
                h2.fetch_add(1, Ordering::SeqCst);
            }),
        );
        f.post_send(0, 1, 0, Bytes::new(), SimTime::ZERO).unwrap();
        f.post_send(0, 1, 0, Bytes::new(), SimTime::ZERO).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn rdma_write_read_roundtrip() {
        let f = fabric_two_hosts();
        let mr = f.register_mr(2, 128).unwrap();
        let w = f
            .rdma_write(0, mr.rkey(), 16, b"payload", SimTime::ZERO)
            .unwrap();
        assert!(w.data_at < w.completed_at);
        // Target sees the data without participating.
        assert_eq!(mr.read(16, 7), b"payload");
        // A third rank can RDMA-read it back.
        let (data, r) = f.rdma_read(1, mr.rkey(), 16, 7, SimTime::ZERO).unwrap();
        assert_eq!(data, b"payload");
        assert!(r.completed_at > r.data_at);
    }

    #[test]
    fn rdma_read_latency_includes_round_trip() {
        let f = fabric_two_hosts();
        let mr = f.register_mr(2, 8).unwrap();
        let (_, r) = f.rdma_read(0, mr.rkey(), 0, 8, SimTime::ZERO).unwrap();
        let m = CostModel::default();
        // Two one-way latencies plus wire time must be included.
        assert!(r.data_at.as_ns() >= 2 * m.hca_wire_latency_ns);
    }

    #[test]
    fn bad_rkey_is_rejected() {
        let f = fabric_two_hosts();
        assert!(matches!(
            f.rdma_write(0, RKey(999), 0, b"x", SimTime::ZERO),
            Err(FabricError::BadRKey)
        ));
    }

    #[test]
    fn unattached_rank_is_rejected() {
        let f = fabric_two_hosts();
        assert!(matches!(
            f.post_send(0, 9, 0, Bytes::new(), SimTime::ZERO),
            Err(FabricError::NotAttached(9))
        ));
    }

    #[test]
    fn qp_creation_failure_budget_is_consumed_by_retries() {
        let plan = FaultPlan::none().with_qp_attach_failures(0, 2);
        let f = Fabric::with_faults(CostModel::default(), plan);
        assert_eq!(
            f.attach(0, HostId(0), true),
            Err(FabricError::QpCreationFailed(0))
        );
        assert_eq!(
            f.attach(0, HostId(0), true),
            Err(FabricError::QpCreationFailed(0))
        );
        // Third attempt succeeds; other ranks never fail.
        assert_eq!(f.attach(0, HostId(0), true), Ok(()));
        assert_eq!(f.attach(1, HostId(0), true), Ok(()));
    }

    #[test]
    fn transient_send_fault_recovers_on_repost() {
        // Every 2nd send fails once; a single repost always succeeds.
        let plan = FaultPlan::none().with_send_faults(2, 1);
        let f = Fabric::with_faults(CostModel::default(), plan);
        f.attach(0, HostId(0), true).unwrap();
        f.attach(1, HostId(1), true).unwrap();
        let payload = Bytes::from_static(b"x");
        // op 0 clean, op 1 faults then recovers.
        assert!(f.post_send(0, 1, 0, payload.clone(), SimTime::ZERO).is_ok());
        assert_eq!(
            f.post_send(0, 1, 0, payload.clone(), SimTime::ZERO)
                .unwrap_err(),
            FabricError::TransientCompletion { src: 0, dst: 1 }
        );
        assert!(f.post_send(0, 1, 0, payload.clone(), SimTime::ZERO).is_ok());
        // Both deliveries (not the errored attempt) reached the receiver.
        assert_eq!(f.poll_recv(1).unwrap().len(), 2);
        // Failed attempts are not counted as sends.
        assert_eq!(f.stats(0).unwrap().sends, 2);
    }

    #[test]
    fn send_faults_are_deterministic_per_op_index() {
        let plan = FaultPlan::none().with_send_faults(3, 2);
        let f = Fabric::with_faults(CostModel::default(), plan);
        f.attach(0, HostId(0), true).unwrap();
        f.attach(1, HostId(1), true).unwrap();
        let mut failures = Vec::new();
        for op in 0..9u64 {
            let mut attempts = 0;
            while f.post_send(0, 1, 0, Bytes::new(), SimTime::ZERO).is_err() {
                attempts += 1;
            }
            if attempts > 0 {
                failures.push((op, attempts));
            }
        }
        // Ops 2, 5, 8 each fail exactly `repeats` = 2 times.
        assert_eq!(failures, vec![(2, 2), (5, 2), (8, 2)]);
    }

    /// Exhaustive interleaving checks of the pending-hint protocol (run
    /// via `RUSTFLAGS="--cfg cmpi_model" cargo test -p cmpi-fabric --lib`).
    #[cfg(cmpi_model)]
    mod model {
        use super::*;
        use cmpi_model::model::{thread, Builder};

        /// The poll fast path must never permanently miss a message: a
        /// post racing the drain either lands its Release store in time
        /// or is picked up by the poller's next pass (the notifier in the
        /// real runtime; a retry loop here). A lost message deadlocks the
        /// model (consumer spins forever on yield with no runnable peer).
        #[test]
        fn pending_hint_never_loses_a_message() {
            Builder::new().max_executions(400_000).check(|| {
                // Serial setup on the root thread: no schedule branching.
                let f = Fabric::new(CostModel::default());
                f.attach(0, HostId(0), true).unwrap();
                f.attach(1, HostId(1), true).unwrap();
                let f2 = Arc::clone(&f);
                let sender = thread::spawn(move || {
                    f2.post_send(0, 1, 7, Bytes::new(), SimTime::ZERO).unwrap();
                });
                let mut got = 0usize;
                while got < 1 {
                    let msgs = f.poll_recv(1).unwrap();
                    got += msgs.len();
                    if got == 0 {
                        thread::yield_now();
                    }
                }
                sender.join();
                assert_eq!(got, 1, "message duplicated");
                assert!(f.poll_recv(1).unwrap().is_empty(), "phantom message");
            });
        }

        /// Two concurrent posters: the drain never duplicates and never
        /// drops, under every interleaving of the two Release stores and
        /// the consumer's Acquire fast path.
        #[test]
        fn pending_hint_survives_concurrent_posts() {
            Builder::new().max_executions(400_000).check(|| {
                let f = Fabric::new(CostModel::default());
                f.attach(0, HostId(0), true).unwrap();
                f.attach(1, HostId(1), true).unwrap();
                f.attach(2, HostId(1), true).unwrap();
                let fa = Arc::clone(&f);
                let pa = thread::spawn(move || {
                    fa.post_send(0, 2, 1, Bytes::new(), SimTime::ZERO).unwrap();
                });
                let fb = Arc::clone(&f);
                let pb = thread::spawn(move || {
                    fb.post_send(1, 2, 2, Bytes::new(), SimTime::ZERO).unwrap();
                });
                let mut got = 0usize;
                while got < 2 {
                    let msgs = f.poll_recv(2).unwrap();
                    got += msgs.len();
                    if msgs.is_empty() {
                        thread::yield_now();
                    }
                }
                pa.join();
                pb.join();
                assert_eq!(got, 2, "message duplicated");
                assert!(f.poll_recv(2).unwrap().is_empty(), "phantom message");
            });
        }
    }

    #[test]
    fn stats_accumulate() {
        let f = fabric_two_hosts();
        f.post_send(0, 1, 0, Bytes::from(vec![0u8; 100]), SimTime::ZERO)
            .unwrap();
        let mr = f.register_mr(1, 64).unwrap();
        f.rdma_write(0, mr.rkey(), 0, &[0u8; 32], SimTime::ZERO)
            .unwrap();
        let st = f.stats(0).unwrap();
        assert_eq!(st.sends, 1);
        assert_eq!(st.send_bytes, 100);
        assert_eq!(st.rdma_ops, 1);
        assert_eq!(st.rdma_bytes, 32);
    }
}
