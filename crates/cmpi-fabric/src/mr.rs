//! Registered memory regions — the RDMA target buffers.
//!
//! An MPI one-sided window over the HCA channel registers its memory with
//! the adapter and shares the resulting rkey with peers; `rdma_read` /
//! `rdma_write` then address `(rkey, offset)` with no involvement of the
//! target process. We model an MR as a byte buffer behind a lock (the
//! simulation's DMA engine), addressed by a cluster-unique [`RKey`].

use parking_lot::Mutex;

/// Remote key identifying a registered memory region, unique per fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RKey(pub u64);

/// A registered memory region.
pub struct MemoryRegion {
    rkey: RKey,
    owner: usize,
    data: Mutex<Vec<u8>>,
}

impl MemoryRegion {
    pub(crate) fn new(rkey: RKey, owner: usize, len: usize) -> Self {
        MemoryRegion {
            rkey,
            owner,
            data: Mutex::new(vec![0u8; len]),
        }
    }

    /// The region's remote key.
    pub fn rkey(&self) -> RKey {
        self.rkey
    }

    /// Rank that registered the region.
    pub fn owner(&self) -> usize {
        self.owner
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    /// `true` for an empty region.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// DMA write (used by `rdma_write` and by the owner's local stores).
    pub fn write(&self, offset: usize, bytes: &[u8]) {
        let mut d = self.data.lock();
        assert!(offset + bytes.len() <= d.len(), "MR write past end");
        d[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// DMA read (used by `rdma_read` and by the owner's local loads).
    pub fn read(&self, offset: usize, len: usize) -> Vec<u8> {
        let d = self.data.lock();
        assert!(offset + len <= d.len(), "MR read past end");
        d[offset..offset + len].to_vec()
    }
}

impl std::fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MemoryRegion(rkey {:?}, owner {}, {} bytes)",
            self.rkey,
            self.owner,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mr = MemoryRegion::new(RKey(1), 0, 32);
        mr.write(4, &[1, 2, 3]);
        assert_eq!(mr.read(4, 3), vec![1, 2, 3]);
        assert_eq!(mr.read(0, 4), vec![0, 0, 0, 0]);
        assert_eq!(mr.len(), 32);
        assert_eq!(mr.owner(), 0);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn out_of_bounds_write_panics() {
        MemoryRegion::new(RKey(1), 0, 8).write(6, &[0; 4]);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn out_of_bounds_read_panics() {
        MemoryRegion::new(RKey(1), 0, 8).read(6, 4);
    }
}
