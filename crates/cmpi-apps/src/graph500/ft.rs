//! Fault-tolerant Graph 500: the same Kronecker build and
//! level-synchronous BFS, parameterized over a communicator and driven
//! through the ULFM recovery loop (revoke → shrink → rebuild →
//! recompute), so the job completes even when ranks die mid-run.
//!
//! The communication skeleton differs from the plain runner in one
//! deliberate way: the wildcard `Irecv(ANY_SOURCE)` polling loop is
//! replaced by deterministic pairwise `try_sendrecv_comm` rounds in ring
//! order. Every transfer names its exact peer, so the parent tree — and
//! therefore the reported checksums — are a pure function of the
//! survivor membership. The chaos suite leans on this: two runs with the
//! same fault plan must report bit-identical outcomes even though the
//! deaths themselves resolve rendezvous races nondeterministically in
//! real time.

use bytes::Bytes;
use cmpi_core::{Comm, Mpi, MpiError, ReduceOp};

use super::bfs::{decode_pairs, encode_pairs, LocalGraph, NO_PARENT};
use super::generator::{bfs_root, edge, owned_range, owner};
use super::Graph500Config;

const TAG_BUILD: u32 = 201;
const TAG_BFS: u32 = 202;

/// What each surviving rank reports from a fault-tolerant run. Every
/// field is agreed (allreduced or shrink-agreed), so the chaos tests can
/// assert survivors return *equal* outcomes and that outcomes are
/// identical across runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FtRankOutcome {
    /// World ranks of the final (possibly shrunk) communicator.
    pub comm_ranks: Vec<usize>,
    /// Per-root global reached-vertex count.
    pub reached: Vec<u64>,
    /// Per-root global parent-tree checksum (wrapping sum of
    /// `v ^ parent[v]` over reached vertices).
    pub checksums: Vec<u64>,
    /// How many revoke-shrink recoveries this rank performed.
    pub recoveries: u64,
}

/// Drive the full fault-tolerant benchmark on one rank. Survivors keep
/// recovering (revoke, shrink, rebuild the graph over the survivor
/// partition, recompute every root) until an attempt completes; a rank
/// scripted to die returns its own failure.
pub fn run_rank_ft(mpi: &mut Mpi, cfg: &Graph500Config) -> Result<FtRankOutcome, MpiError> {
    let mut comm = mpi.comm_world();
    let mut recoveries = 0u64;
    // Each genuine recovery removes at least one rank, so more shrink
    // cycles than ranks means the error is not survivable — give up
    // rather than loop.
    let max_recoveries = mpi.size() as u64 + 1;
    loop {
        match attempt(mpi, cfg, &comm) {
            Ok((reached, checksums)) => {
                return Ok(FtRankOutcome {
                    comm_ranks: comm.ranks().to_vec(),
                    reached,
                    checksums,
                    recoveries,
                });
            }
            Err(e @ MpiError::ProcessFailed { peer }) if peer == mpi.rank() => {
                // This rank itself is the casualty: no recovery, report it.
                return Err(e);
            }
            Err(MpiError::ProcessFailed { .. } | MpiError::Revoked)
                if recoveries < max_recoveries =>
            {
                mpi.revoke(&comm);
                comm = mpi.try_shrink(&comm)?;
                recoveries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One complete attempt over `comm`: build the graph partitioned across
/// the communicator, then run and checksum every root.
fn attempt(
    mpi: &mut Mpi,
    cfg: &Graph500Config,
    comm: &Comm,
) -> Result<(Vec<u64>, Vec<u64>), MpiError> {
    let g = build_graph_ft(mpi, cfg, comm)?;
    let mut reached = Vec::with_capacity(cfg.num_roots);
    let mut checksums = Vec::with_capacity(cfg.num_roots);
    for i in 0..cfg.num_roots {
        let root = bfs_root(cfg.seed, cfg.scale, cfg.edgefactor, i as u64);
        mpi.try_barrier_comm(comm)?;
        let parent = bfs_ft(mpi, cfg, comm, &g, root)?;
        let mut local_reached = 0u64;
        let mut local_sum = 0u64;
        for (i, &pv) in parent.iter().enumerate() {
            if pv != NO_PARENT {
                local_reached += 1;
                local_sum = local_sum.wrapping_add((g.lo + i as u64) ^ pv);
            }
        }
        reached.push(mpi.try_allreduce_one(comm, local_reached, ReduceOp::Sum)?);
        checksums.push(mpi.try_allreduce_one(comm, local_sum, ReduceOp::Sum)?);
    }
    Ok((reached, checksums))
}

/// Build this rank's CSR slice with vertices and edge generation
/// partitioned over the *communicator* (so a shrunk communicator
/// repartitions the whole graph across the survivors). The alltoallv of
/// the plain builder becomes a deterministic pairwise ring exchange.
fn build_graph_ft(
    mpi: &mut Mpi,
    cfg: &Graph500Config,
    comm: &Comm,
) -> Result<LocalGraph, MpiError> {
    let n = cfg.num_vertices();
    let m = cfg.num_edges();
    let p = comm.size();
    let me = comm
        .comm_rank_of(mpi.rank())
        .expect("rank not in communicator");
    let (lo, hi) = owned_range(me, n, p);

    let per = m.div_ceil(p as u64);
    let e_lo = (me as u64 * per).min(m);
    let e_hi = ((me as u64 + 1) * per).min(m);
    let mut buckets: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    for idx in e_lo..e_hi {
        let (u, v) = edge(cfg.seed, cfg.scale, idx);
        if u == v {
            continue;
        }
        buckets[owner(u, n, p)].push((u, v));
        buckets[owner(v, n, p)].push((v, u));
    }
    mpi.compute_items(e_hi - e_lo, 12);

    let mut incoming: Vec<Bytes> = Vec::with_capacity(p);
    incoming.push(encode_pairs(&buckets[me]));
    for step in 1..p {
        let dst = (me + step) % p;
        let src = (me + p - step) % p;
        let (data, _) = mpi.try_sendrecv_comm(
            comm,
            encode_pairs(&buckets[dst]),
            dst,
            TAG_BUILD,
            src,
            TAG_BUILD,
        )?;
        incoming.push(data);
    }
    drop(buckets);

    let local_n = (hi - lo) as usize;
    let mut degree = vec![0usize; local_n];
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for block in &incoming {
        for (src_v, dst_v) in decode_pairs(block) {
            debug_assert!(src_v >= lo && src_v < hi);
            degree[(src_v - lo) as usize] += 1;
            edges.push((src_v, dst_v));
        }
    }
    let mut xadj = vec![0usize; local_n + 1];
    for i in 0..local_n {
        xadj[i + 1] = xadj[i] + degree[i];
    }
    let mut cursor = xadj.clone();
    let mut adj = vec![0u64; edges.len()];
    for (src_v, dst_v) in edges {
        let i = (src_v - lo) as usize;
        adj[cursor[i]] = dst_v;
        cursor[i] += 1;
    }
    mpi.compute_items(adj.len() as u64, 6);
    Ok(LocalGraph { lo, hi, xadj, adj })
}

/// Level-synchronous BFS over `comm`, all transfers fault-tolerant.
/// Returns the local parent array.
fn bfs_ft(
    mpi: &mut Mpi,
    cfg: &Graph500Config,
    comm: &Comm,
    g: &LocalGraph,
    root: u64,
) -> Result<Vec<u64>, MpiError> {
    let n = cfg.num_vertices();
    let p = comm.size();
    let me = comm
        .comm_rank_of(mpi.rank())
        .expect("rank not in communicator");
    let mut parent = vec![NO_PARENT; g.local_n()];
    let mut frontier: Vec<u64> = Vec::new();
    if owner(root, n, p) == me {
        parent[(root - g.lo) as usize] = root;
        frontier.push(root);
    }

    loop {
        let mut next: Vec<u64> = Vec::new();
        let mut out: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
        for &u in &frontier {
            let nbrs = g.neighbors(u);
            mpi.compute_items(nbrs.len() as u64, cfg.ns_per_edge);
            for &v in nbrs {
                let o = owner(v, n, p);
                if o == me {
                    let li = (v - g.lo) as usize;
                    if parent[li] == NO_PARENT {
                        parent[li] = u;
                        next.push(v);
                    }
                } else {
                    out[o].push((v, u));
                }
            }
        }
        // Exchange the level's discoveries pairwise: at step s everyone
        // sends to `me + s` and receives from `me - s`, so each transfer
        // names its exact peer and discovery order is reproducible.
        for step in 1..p {
            let dst = (me + step) % p;
            let src = (me + p - step) % p;
            let (data, _) =
                mpi.try_sendrecv_comm(comm, encode_pairs(&out[dst]), dst, TAG_BFS, src, TAG_BFS)?;
            let pairs = decode_pairs(&data);
            mpi.compute_items(pairs.len() as u64, cfg.ns_per_edge);
            for (v, u) in pairs {
                let li = (v - g.lo) as usize;
                if parent[li] == NO_PARENT {
                    parent[li] = u;
                    next.push(v);
                }
            }
        }
        let global_next = mpi.try_allreduce_one(comm, next.len() as u64, ReduceOp::Sum)?;
        if global_next == 0 {
            break;
        }
        frontier = next;
    }
    Ok(parent)
}
