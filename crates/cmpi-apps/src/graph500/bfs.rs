//! Distributed level-synchronous BFS (MPI-simple flavour).
//!
//! Communication skeleton, matching the paper's mpiP profile exactly:
//! `MPI_Isend` of batched `(vertex, predecessor)` pairs, `MPI_Irecv` +
//! `MPI_Test` polling on the receive side, and one `MPI_Allreduce` per
//! level to detect termination.

use bytes::{BufMut, Bytes, BytesMut};
use cmpi_cluster::SimTime;
use cmpi_core::{Completion, Mpi, ReduceOp, ANY_SOURCE, ANY_TAG};

use super::generator::{bfs_root, edge, owned_range, owner};
use super::validate;
use super::Graph500Config;

/// Not-yet-visited marker in the parent array.
pub const NO_PARENT: u64 = u64::MAX;

const TAG_DATA: u32 = 101;
const TAG_END: u32 = 102;

/// Batched pairs per full message: 520 pairs = 8320 bytes, just above the
/// 8 KiB `SMP_EAGER_SIZE` — the paper sets the BFS message size to 8K, so
/// full batches travel the CMA rendezvous path while stragglers and end
/// markers stay on SHM (this is what makes CMA dominate Table I).
const BATCH_PAIRS: usize = 520;

/// What each rank reports back to the driver.
#[derive(Clone, Debug)]
pub struct RankOutcome {
    /// Per-root BFS time on this rank.
    pub bfs_times: Vec<SimTime>,
    /// Per-root edges traversed by this rank.
    pub traversed_edges: Vec<u64>,
    /// All validations passed (as broadcast from rank 0).
    pub validated: bool,
}

/// This rank's slice of the graph in CSR form.
pub struct LocalGraph {
    /// First owned vertex (global id).
    pub lo: u64,
    /// One past the last owned vertex.
    pub hi: u64,
    /// CSR row offsets (`hi - lo + 1` entries).
    pub xadj: Vec<usize>,
    /// CSR adjacency (global vertex ids).
    pub adj: Vec<u64>,
}

impl LocalGraph {
    /// Number of owned vertices.
    pub fn local_n(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Neighbours of owned vertex `v` (global id).
    pub fn neighbors(&self, v: u64) -> &[u64] {
        let i = (v - self.lo) as usize;
        &self.adj[self.xadj[i]..self.xadj[i + 1]]
    }
}

pub(super) fn encode_pairs(pairs: &[(u64, u64)]) -> Bytes {
    let mut b = BytesMut::with_capacity(pairs.len() * 16);
    for &(v, u) in pairs {
        b.put_u64_le(v);
        b.put_u64_le(u);
    }
    b.freeze()
}

pub(super) fn decode_pairs(data: &[u8]) -> Vec<(u64, u64)> {
    assert_eq!(data.len() % 16, 0, "corrupt pair batch");
    data.chunks_exact(16)
        .map(|c| {
            (
                u64::from_le_bytes(c[0..8].try_into().unwrap()),
                u64::from_le_bytes(c[8..16].try_into().unwrap()),
            )
        })
        .collect()
}

/// Build this rank's CSR slice: every rank generates an equal share of
/// the global edge list, routes each endpoint to its owner with
/// `alltoallv`, and assembles local adjacency.
pub fn build_graph(mpi: &mut Mpi, cfg: &Graph500Config) -> LocalGraph {
    let n = cfg.num_vertices();
    let m = cfg.num_edges();
    let p = mpi.size();
    let rank = mpi.rank();
    let (lo, hi) = owned_range(rank, n, p);

    // Generate our share of edges and bucket both directions by owner.
    let per = m.div_ceil(p as u64);
    let e_lo = (rank as u64 * per).min(m);
    let e_hi = ((rank as u64 + 1) * per).min(m);
    let mut buckets: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    for idx in e_lo..e_hi {
        let (u, v) = edge(cfg.seed, cfg.scale, idx);
        if u == v {
            continue; // Graph 500 drops self-loops
        }
        buckets[owner(u, n, p)].push((u, v));
        buckets[owner(v, n, p)].push((v, u));
    }
    // Generation cost: the reference kernel 1 is compute-heavy.
    mpi.compute_items(e_hi - e_lo, 12);

    let blocks: Vec<Bytes> = buckets.iter().map(|b| encode_pairs(b)).collect();
    drop(buckets);
    let incoming = mpi.alltoallv_bytes(blocks);

    // Assemble CSR.
    let local_n = (hi - lo) as usize;
    let mut degree = vec![0usize; local_n];
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for block in &incoming {
        for (src_v, dst_v) in decode_pairs(block) {
            debug_assert!(src_v >= lo && src_v < hi);
            degree[(src_v - lo) as usize] += 1;
            edges.push((src_v, dst_v));
        }
    }
    let mut xadj = vec![0usize; local_n + 1];
    for i in 0..local_n {
        xadj[i + 1] = xadj[i] + degree[i];
    }
    let mut cursor = xadj.clone();
    let mut adj = vec![0u64; edges.len()];
    for (src_v, dst_v) in edges {
        let i = (src_v - lo) as usize;
        adj[cursor[i]] = dst_v;
        cursor[i] += 1;
    }
    mpi.compute_items(adj.len() as u64, 6);
    LocalGraph { lo, hi, xadj, adj }
}

/// One full benchmark run on one rank.
pub fn run_rank(mpi: &mut Mpi, cfg: &Graph500Config) -> RankOutcome {
    let graph = build_graph(mpi, cfg);
    let mut bfs_times = Vec::with_capacity(cfg.num_roots);
    let mut traversed = Vec::with_capacity(cfg.num_roots);
    let mut validated = true;
    for i in 0..cfg.num_roots {
        let root = bfs_root(cfg.seed, cfg.scale, cfg.edgefactor, i as u64);
        mpi.barrier();
        let t0 = mpi.now();
        let (parent, edges_scanned) = bfs(mpi, cfg, &graph, root);
        let t = mpi.now() - t0;
        bfs_times.push(t);
        traversed.push(edges_scanned);
        if cfg.validate {
            validated &= validate::validate(mpi, cfg, &graph, root, &parent);
        }
    }
    RankOutcome {
        bfs_times,
        traversed_edges: traversed,
        validated,
    }
}

/// Level-synchronous BFS from `root`. Returns the local parent array and
/// the number of edges this rank scanned.
pub fn bfs(mpi: &mut Mpi, cfg: &Graph500Config, g: &LocalGraph, root: u64) -> (Vec<u64>, u64) {
    let n = cfg.num_vertices();
    let p = mpi.size();
    let rank = mpi.rank();
    let mut parent = vec![NO_PARENT; g.local_n()];
    let mut frontier: Vec<u64> = Vec::new();
    if owner(root, n, p) == rank {
        parent[(root - g.lo) as usize] = root;
        frontier.push(root);
    }
    let mut edges_scanned = 0u64;

    loop {
        let mut next: Vec<u64> = Vec::new();
        let mut out: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
        let mut send_reqs = Vec::new();

        // Scan the frontier, coalescing remote discoveries.
        for &u in &frontier {
            let nbrs = g.neighbors(u);
            edges_scanned += nbrs.len() as u64;
            mpi.compute_items(nbrs.len() as u64, cfg.ns_per_edge);
            for &v in nbrs {
                let o = owner(v, n, p);
                if o == rank {
                    let li = (v - g.lo) as usize;
                    if parent[li] == NO_PARENT {
                        parent[li] = u;
                        next.push(v);
                    }
                } else {
                    out[o].push((v, u));
                    if out[o].len() >= BATCH_PAIRS {
                        let batch = encode_pairs(&out[o]);
                        out[o].clear();
                        send_reqs.push(mpi.isend_bytes(batch, o, TAG_DATA));
                    }
                }
            }
        }
        // Flush remainders and fence each peer with an end marker.
        for (o, pending) in out.iter_mut().enumerate() {
            if o == rank {
                continue;
            }
            if !pending.is_empty() {
                let batch = encode_pairs(pending);
                pending.clear();
                send_reqs.push(mpi.isend_bytes(batch, o, TAG_DATA));
            }
            send_reqs.push(mpi.isend_bytes(Bytes::new(), o, TAG_END));
        }

        // Drain incoming batches until every peer's end marker arrived,
        // polling with MPI_Test like the reference implementation.
        let mut ends = 0usize;
        if p > 1 {
            let mut req = mpi.irecv_bytes(ANY_SOURCE, ANY_TAG);
            loop {
                match mpi.test(&req) {
                    Some(Completion::Recv(data, st)) => {
                        match st.tag {
                            TAG_END => ends += 1,
                            TAG_DATA => {
                                let pairs = decode_pairs(&data);
                                mpi.compute_items(pairs.len() as u64, cfg.ns_per_edge);
                                for (v, u) in pairs {
                                    let li = (v - g.lo) as usize;
                                    if parent[li] == NO_PARENT {
                                        parent[li] = u;
                                        next.push(v);
                                    }
                                }
                            }
                            t => panic!("unexpected tag {t}"),
                        }
                        if ends == p - 1 {
                            break;
                        }
                        req = mpi.irecv_bytes(ANY_SOURCE, ANY_TAG);
                    }
                    Some(Completion::Send) => unreachable!(),
                    None => mpi.idle_wait(),
                }
            }
        }
        mpi.waitall(send_reqs);

        // Level termination: one allreduce, as profiled in Fig. 3(a).
        let global_next = mpi.allreduce(&[next.len() as u64], ReduceOp::Sum)[0];
        if global_next == 0 {
            break;
        }
        frontier = next;
    }
    (parent, edges_scanned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_codec_roundtrips() {
        let pairs = vec![(1u64, 2u64), (u64::MAX, 0), (42, 43)];
        assert_eq!(decode_pairs(&encode_pairs(&pairs)), pairs);
        assert!(decode_pairs(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "corrupt pair batch")]
    fn truncated_batch_is_rejected() {
        decode_pairs(&[0u8; 15]);
    }
}
