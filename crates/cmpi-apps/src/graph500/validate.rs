//! Parent-tree validation (Graph 500 kernel 2 verification).
//!
//! Parent arrays are gathered to rank 0, which regenerates the edge list
//! and checks the Graph 500 validation rules:
//!
//! 1. the root's parent is itself;
//! 2. every other visited vertex has a visited parent and a real edge to
//!    it;
//! 3. parent chains terminate at the root (no cycles);
//! 4. connectivity: each edge's endpoints are either both visited or both
//!    unvisited (BFS covers the root's whole component).
//!
//! This is a test-scale verifier (it centralizes the tree); the figure
//! harness disables it for its largest runs.

use std::collections::HashSet;

use cmpi_core::Mpi;

use super::bfs::NO_PARENT;
use super::generator::edge;
use super::{bfs::LocalGraph, Graph500Config};

/// Padding marker for the gather of unequal local slices.
const PAD: u64 = u64::MAX - 1;

/// Gather the distributed parent array and validate on rank 0; the
/// verdict is broadcast so every rank returns the same bool.
pub fn validate(
    mpi: &mut Mpi,
    cfg: &Graph500Config,
    g: &LocalGraph,
    root: u64,
    parent: &[u64],
) -> bool {
    let n = cfg.num_vertices();
    let per = n.div_ceil(mpi.size() as u64) as usize;
    let mut padded = parent.to_vec();
    padded.resize(per, PAD);
    debug_assert_eq!(g.local_n(), parent.len());
    let gathered = mpi.gather(&padded, 0);
    let ok = if let Some(all) = gathered {
        let full: Vec<u64> = all.into_iter().filter(|&x| x != PAD).collect();
        check_tree(cfg, root, &full) as u64
    } else {
        0
    };
    let mut verdict = [ok];
    mpi.bcast(&mut verdict, 0);
    verdict[0] == 1
}

/// Rank 0's sequential check of the assembled parent array.
pub fn check_tree(cfg: &Graph500Config, root: u64, parent: &[u64]) -> bool {
    let n = cfg.num_vertices() as usize;
    if parent.len() != n {
        return false;
    }
    let ri = root as usize;
    if parent[ri] != root {
        return false;
    }
    // Regenerate the edge set (undirected, normalized).
    let mut edges: HashSet<(u64, u64)> = HashSet::new();
    for idx in 0..cfg.num_edges() {
        let (u, v) = edge(cfg.seed, cfg.scale, idx);
        if u != v {
            edges.insert((u.min(v), u.max(v)));
        }
    }
    // Rule 2: tree edges are real edges.
    for (v, &p) in parent.iter().enumerate() {
        if p == NO_PARENT || v == ri {
            continue;
        }
        if p as usize >= n || parent[p as usize] == NO_PARENT {
            return false;
        }
        let key = ((v as u64).min(p), (v as u64).max(p));
        if !edges.contains(&key) {
            return false;
        }
    }
    // Rule 3: chains terminate at the root. Memoized walk.
    let mut state = vec![0u8; n]; // 0 unknown, 1 in-progress, 2 ok
    state[ri] = 2;
    for v in 0..n {
        if parent[v] == NO_PARENT {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = v;
        while state[cur] == 0 {
            state[cur] = 1;
            path.push(cur);
            cur = parent[cur] as usize;
            if state[cur] == 1 {
                return false; // cycle
            }
        }
        if state[cur] != 2 {
            return false;
        }
        for x in path {
            state[x] = 2;
        }
    }
    // Rule 4: component coverage.
    for &(u, v) in &edges {
        let uv = parent[u as usize] != NO_PARENT;
        let vv = parent[v as usize] != NO_PARENT;
        if uv != vv {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Graph500Config {
        Graph500Config {
            scale: 6,
            edgefactor: 8,
            ..Default::default()
        }
    }

    /// Sequential reference BFS over the regenerated edge list.
    fn reference_parents(cfg: &Graph500Config, root: u64) -> Vec<u64> {
        let n = cfg.num_vertices() as usize;
        let mut adj = vec![Vec::new(); n];
        for idx in 0..cfg.num_edges() {
            let (u, v) = edge(cfg.seed, cfg.scale, idx);
            if u != v {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
        let mut parent = vec![NO_PARENT; n];
        parent[root as usize] = root;
        let mut q = std::collections::VecDeque::from([root as usize]);
        while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                if parent[v as usize] == NO_PARENT {
                    parent[v as usize] = u as u64;
                    q.push_back(v as usize);
                }
            }
        }
        parent
    }

    #[test]
    fn reference_tree_validates() {
        let cfg = tiny_cfg();
        let root = super::super::generator::bfs_root(cfg.seed, cfg.scale, cfg.edgefactor, 0);
        let parent = reference_parents(&cfg, root);
        assert!(check_tree(&cfg, root, &parent));
    }

    #[test]
    fn corrupted_trees_are_rejected() {
        let cfg = tiny_cfg();
        let root = super::super::generator::bfs_root(cfg.seed, cfg.scale, cfg.edgefactor, 0);
        let good = reference_parents(&cfg, root);

        // Wrong root parent.
        let mut bad = good.clone();
        bad[root as usize] = NO_PARENT;
        assert!(!check_tree(&cfg, root, &bad));

        // A fabricated edge: point some visited vertex at a non-neighbor.
        let mut bad = good.clone();
        let victim = (0..bad.len())
            .find(|&v| v as u64 != root && bad[v] != NO_PARENT && bad[v] != (v as u64 + 1) % 7)
            .unwrap();
        // Parent it to a vertex at distance "random"; ensure no real edge.
        let mut fake = None;
        for cand in 0..bad.len() as u64 {
            if cand != victim as u64 && bad[cand as usize] != NO_PARENT {
                let cfg2 = tiny_cfg();
                let mut edges = HashSet::new();
                for idx in 0..cfg2.num_edges() {
                    let (u, v) = edge(cfg2.seed, cfg2.scale, idx);
                    edges.insert((u.min(v), u.max(v)));
                }
                let key = ((victim as u64).min(cand), (victim as u64).max(cand));
                if !edges.contains(&key) {
                    fake = Some(cand);
                    break;
                }
            }
        }
        if let Some(f) = fake {
            bad[victim] = f;
            assert!(!check_tree(&cfg, root, &bad));
        }

        // A 2-cycle between visited vertices.
        let mut bad = good.clone();
        let a = (0..bad.len())
            .find(|&v| v as u64 != root && bad[v] != NO_PARENT)
            .unwrap();
        let p = bad[a] as usize;
        if p != root as usize {
            bad[p] = a as u64;
            assert!(!check_tree(&cfg, root, &bad));
        }

        // Wrong length.
        assert!(!check_tree(&cfg, root, &good[..good.len() - 1]));
    }
}
