//! Kronecker (R-MAT) edge generation, Graph 500 style.
//!
//! Every edge is generated independently from a counter-based PRNG
//! (splitmix64 of `(seed, edge index, level)`), so any rank can generate
//! any slice of the edge list deterministically with no communication and
//! no shared RNG state — matching how the reference implementation
//! parallelizes generation.

/// R-MAT quadrant probabilities from the Graph 500 specification.
const A: f64 = 0.57;
const B: f64 = 0.19;
const C: f64 = 0.19;
// D = 0.05 (the remainder).

/// splitmix64: a small, high-quality counter-based generator.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform f64 in [0,1) from a hash.
#[inline]
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Generate the `idx`-th edge of a scale-`scale` Kronecker graph.
pub fn edge(seed: u64, scale: u32, idx: u64) -> (u64, u64) {
    let mut u = 0u64;
    let mut v = 0u64;
    for level in 0..scale {
        let h = splitmix64(seed ^ splitmix64(idx ^ (level as u64) << 32 | level as u64));
        let r = unit(h);
        let (ubit, vbit) = if r < A {
            (0, 0)
        } else if r < A + B {
            (0, 1)
        } else if r < A + B + C {
            (1, 0)
        } else {
            (1, 1)
        };
        u = (u << 1) | ubit;
        v = (v << 1) | vbit;
    }
    // Graph 500 scrambles vertex ids to break the generator's locality.
    (scramble(u, seed, scale), scramble(v, seed, scale))
}

/// Permute a vertex id within [0, 2^scale) (a cheap Feistel-style mix).
fn scramble(v: u64, seed: u64, scale: u32) -> u64 {
    let mask = (1u64 << scale) - 1;
    let mut x = v;
    for round in 0..3u64 {
        x ^= splitmix64(seed ^ (round << 48) ^ (x >> (scale / 2))) & mask;
        x = (x.rotate_left(scale / 2 + 1)) & mask;
    }
    x & mask
}

/// The vertex owner under block 1-D partitioning.
#[inline]
pub fn owner(v: u64, num_vertices: u64, ranks: usize) -> usize {
    let per = num_vertices.div_ceil(ranks as u64);
    (v / per) as usize
}

/// The local index of `v` on its owner.
#[inline]
pub fn local_index(v: u64, num_vertices: u64, ranks: usize) -> usize {
    let per = num_vertices.div_ceil(ranks as u64);
    (v % per) as usize
}

/// Vertex range `[lo, hi)` owned by `rank`.
pub fn owned_range(rank: usize, num_vertices: u64, ranks: usize) -> (u64, u64) {
    let per = num_vertices.div_ceil(ranks as u64);
    let lo = (rank as u64 * per).min(num_vertices);
    let hi = ((rank as u64 + 1) * per).min(num_vertices);
    (lo, hi)
}

/// Pick the `i`-th BFS root: a vertex with at least one edge (probed
/// deterministically).
pub fn bfs_root(seed: u64, scale: u32, edgefactor: u32, i: u64) -> u64 {
    let n = 1u64 << scale;
    let m = n * edgefactor as u64;
    // Sample edges until one has distinct endpoints; use its source.
    let mut probe = splitmix64(seed ^ 0x526f_6f74_0000_0000 ^ i);
    loop {
        let e = probe % m;
        let (u, v) = edge(seed, scale, e);
        if u != v {
            return u;
        }
        probe = splitmix64(probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for idx in [0u64, 1, 999, 123_456] {
            assert_eq!(edge(42, 16, idx), edge(42, 16, idx));
        }
        assert_ne!(edge(42, 16, 0), edge(43, 16, 0));
    }

    #[test]
    fn edges_stay_in_range() {
        let scale = 10;
        let n = 1u64 << scale;
        for idx in 0..5_000 {
            let (u, v) = edge(7, scale, idx);
            assert!(u < n && v < n, "edge {idx} = ({u},{v})");
        }
    }

    #[test]
    fn rmat_skew_produces_hubs() {
        // R-MAT graphs are highly skewed: the max degree must far exceed
        // the average.
        let scale = 10;
        let n = 1usize << scale;
        let m = (n * 8) as u64;
        let mut deg = vec![0u32; n];
        for idx in 0..m {
            let (u, v) = edge(1, scale, idx);
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let avg = 2.0 * m as f64 / n as f64;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(
            max > 5.0 * avg,
            "max degree {max} vs avg {avg} — not skewed enough"
        );
    }

    #[test]
    fn ownership_partitions_every_vertex_exactly_once() {
        let n = 1000u64;
        for ranks in [1usize, 3, 7, 16] {
            let mut counts = vec![0u64; ranks];
            for v in 0..n {
                let o = owner(v, n, ranks);
                assert!(o < ranks);
                let (lo, hi) = owned_range(o, n, ranks);
                assert!(v >= lo && v < hi);
                assert_eq!(local_index(v, n, ranks) as u64, v - lo);
                counts[o] += 1;
            }
            assert_eq!(counts.iter().sum::<u64>(), n);
        }
    }

    #[test]
    fn roots_are_valid_and_distinct_enough() {
        let mut roots = Vec::new();
        for i in 0..8 {
            let r = bfs_root(99, 10, 8, i);
            assert!(r < 1 << 10);
            roots.push(r);
        }
        roots.sort_unstable();
        roots.dedup();
        assert!(roots.len() >= 4, "roots collapsed: {roots:?}");
    }
}
