//! Graph 500 (MPI-simple flavour).
//!
//! The paper's motivating workload (Fig. 1, Fig. 3, Table I, Fig. 11,
//! Fig. 12): generate a Kronecker graph, run breadth-first searches from
//! pseudo-random roots, time the BFS phase, validate the parent tree.

pub mod bfs;
pub mod ft;
pub mod generator;
pub mod validate;

use cmpi_cluster::SimTime;
use cmpi_core::{JobResult, JobSpec, JobStats, MpiError};

pub use ft::FtRankOutcome;

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct Graph500Config {
    /// log2 of the vertex count (the paper runs scale 20; tests and CI
    /// figures use smaller scales — the Default/Proposed/Native ratios are
    /// scale-independent because they come from the same code paths).
    pub scale: u32,
    /// Edges per vertex (Graph 500 default 16).
    pub edgefactor: u32,
    /// Number of BFS roots to search from (Graph 500 runs 64; we default
    /// to fewer for CI).
    pub num_roots: usize,
    /// RNG seed for graph construction and root selection.
    pub seed: u64,
    /// Modelled compute cost per traversed edge, ns.
    pub ns_per_edge: u64,
    /// Validate the parent tree after each search (gathers to rank 0 —
    /// fine at test scales).
    pub validate: bool,
}

impl Default for Graph500Config {
    fn default() -> Self {
        Graph500Config {
            scale: 12,
            edgefactor: 16,
            num_roots: 4,
            seed: 0x6a09_e667_f3bc_c908,
            ns_per_edge: 4,
            validate: true,
        }
    }
}

impl Graph500Config {
    /// Total vertex count.
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Total (directed half-)edge count before deduplication.
    pub fn num_edges(&self) -> u64 {
        self.num_vertices() * self.edgefactor as u64
    }
}

/// Benchmark outcome.
#[derive(Clone, Debug)]
pub struct Graph500Result {
    /// Per-root BFS virtual times (max across ranks, like the reference
    /// harness reports).
    pub bfs_times: Vec<SimTime>,
    /// Harmonic-mean TEPS (traversed edges per second) over all searches.
    pub mean_teps: f64,
    /// Whether every parent tree validated.
    pub validated: bool,
    /// Edges traversed per search.
    pub traversed_edges: Vec<u64>,
    /// Job-wide communication/recovery statistics.
    pub stats: JobStats,
}

impl Graph500Result {
    /// Mean BFS time.
    pub fn mean_bfs_time(&self) -> SimTime {
        if self.bfs_times.is_empty() {
            return SimTime::ZERO;
        }
        self.bfs_times.iter().copied().sum::<SimTime>() / self.bfs_times.len() as u64
    }
}

/// Run the full benchmark on a job spec: generation, `num_roots`
/// searches, optional validation.
pub fn run(spec: &JobSpec, cfg: Graph500Config) -> Graph500Result {
    let res: JobResult<bfs::RankOutcome> = spec.run(move |mpi| bfs::run_rank(mpi, &cfg));
    summarize(cfg, res)
}

/// Run the fault-tolerant benchmark: every rank drives the ULFM recovery
/// loop in [`ft`]; survivors report agreed outcomes, ranks scripted to
/// die report their own failure.
pub fn run_ft(spec: &JobSpec, cfg: Graph500Config) -> JobResult<Result<FtRankOutcome, MpiError>> {
    spec.run_ft(move |mpi| ft::run_rank_ft(mpi, &cfg))
}

fn summarize(cfg: Graph500Config, res: JobResult<bfs::RankOutcome>) -> Graph500Result {
    let roots = cfg.num_roots;
    let mut bfs_times = Vec::with_capacity(roots);
    let mut traversed = vec![0u64; roots];
    for (i, tr) in traversed.iter_mut().enumerate() {
        // The reference harness reports the slowest rank per search.
        let t = res
            .results
            .iter()
            .map(|o| o.bfs_times[i])
            .fold(SimTime::ZERO, SimTime::max);
        bfs_times.push(t);
        for o in &res.results {
            *tr += o.traversed_edges[i];
        }
    }
    let validated = res.results.iter().all(|o| o.validated);
    // Harmonic mean of TEPS, per the Graph 500 spec.
    let mut inv_sum = 0.0f64;
    let mut counted = 0usize;
    for (t, &e) in bfs_times.iter().zip(&traversed) {
        if e > 0 && !t.is_zero() {
            inv_sum += t.as_secs_f64() / e as f64;
            counted += 1;
        }
    }
    let mean_teps = if counted > 0 {
        counted as f64 / inv_sum
    } else {
        0.0
    };
    Graph500Result {
        bfs_times,
        mean_teps,
        validated,
        traversed_edges: traversed,
        stats: res.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpi_cluster::{DeploymentScenario, NamespaceSharing};
    use cmpi_core::LocalityPolicy;

    fn tiny() -> Graph500Config {
        Graph500Config {
            scale: 9,
            edgefactor: 8,
            num_roots: 2,
            ..Default::default()
        }
    }

    #[test]
    fn bfs_validates_on_native_and_containers() {
        for scenario in [
            DeploymentScenario::native(1, 4),
            DeploymentScenario::containers(1, 2, 2, NamespaceSharing::default()),
        ] {
            let r = run(&JobSpec::new(scenario), tiny());
            assert!(r.validated);
            assert!(r.mean_teps > 0.0);
            assert_eq!(r.bfs_times.len(), 2);
        }
    }

    #[test]
    fn results_identical_across_policies() {
        // The locality policy must change timing, never the answer.
        let base = DeploymentScenario::containers(1, 4, 2, NamespaceSharing::default());
        let opt = run(
            &JobSpec::new(base.clone()).with_policy(LocalityPolicy::ContainerDetector),
            tiny(),
        );
        let def = run(
            &JobSpec::new(base).with_policy(LocalityPolicy::Hostname),
            tiny(),
        );
        assert!(opt.validated && def.validated);
        assert_eq!(opt.traversed_edges, def.traversed_edges);
        // And the paper's headline: the detector is faster.
        assert!(opt.mean_bfs_time() < def.mean_bfs_time());
    }

    #[test]
    fn fig1_shape_default_degrades_with_containers() {
        // Fig. 1: with the default library, more containers per host =
        // slower BFS; native and 1-container are equivalent.
        let time = |cph: u32| {
            let spec =
                JobSpec::new(DeploymentScenario::fig1(cph)).with_policy(LocalityPolicy::Hostname);
            run(
                &spec,
                Graph500Config {
                    scale: 10,
                    edgefactor: 8,
                    num_roots: 5,
                    ..Default::default()
                },
            )
            .mean_bfs_time()
        };
        let native = time(0);
        let one = time(1);
        let two = time(2);
        let four = time(4);
        // Native and 1-container route identically (all-SHM/CMA); at toy
        // scale the per-call container tax plus ANY_SOURCE arrival-order
        // jitter leaves a wider band than the paper's near-equality.
        let close = |a: SimTime, b: SimTime| {
            let (a, b) = (a.as_ns() as f64, b.as_ns() as f64);
            (a - b).abs() / b.max(1.0) < 0.30
        };
        assert!(close(native, one), "native {native} vs 1-container {one}");
        // The degradation ordering is the claim; thresholds sit below the
        // typical factors (2-cont ~1.2-1.5x, 4-cont ~1.5-2.5x at this
        // scale) to stay clear of ANY_SOURCE jitter.
        let (one_f, two_f, four_f) = (one.as_ns() as f64, two.as_ns() as f64, four.as_ns() as f64);
        assert!(two_f > 1.08 * one_f, "2 containers {two} vs {one}");
        assert!(four_f > 1.25 * one_f, "4 containers {four} vs 1 {one}");
        assert!(four_f > two_f * 0.95, "4 containers {four} vs 2 {two}");
    }

    #[test]
    fn fig11_proposed_design_flattens_the_curve() {
        // Fig. 11: with the locality-aware library all container counts
        // perform alike (the curve is flat), close to native. At this toy
        // scale the fixed per-call container overhead is amplified
        // relative to the tiny per-rank work, so the native gap bound is
        // looser than the paper's <5% (which the figure harness
        // reproduces at scale 16).
        let time = |cph: u32| {
            let spec = JobSpec::new(DeploymentScenario::fig1(cph));
            run(
                &spec,
                Graph500Config {
                    scale: 10,
                    edgefactor: 8,
                    num_roots: 3,
                    ..Default::default()
                },
            )
            .mean_bfs_time()
        };
        let native = time(0).as_ns() as f64;
        let one = time(1).as_ns() as f64;
        for (cph, t) in [(2u32, time(2)), (4, time(4))] {
            let t = t.as_ns() as f64;
            assert!(
                (t - one).abs() / one < 0.25,
                "{cph} containers: {t}ns vs 1-container {one}ns — curve must be flat"
            );
        }
        assert!(
            (one - native) / native < 0.35,
            "1-container {one} vs native {native}"
        );
    }
}
