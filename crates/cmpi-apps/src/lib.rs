//! # cmpi-apps — end applications
//!
//! The two application workloads the paper evaluates (Section V-D):
//!
//! * [`graph500`] — the Graph 500 benchmark in its MPI-simple flavour:
//!   Kronecker (R-MAT) graph generation, 1-D partitioned level-synchronous
//!   BFS driven by `Isend`/`Irecv`/`Test`/`Allreduce` (the exact call mix
//!   the paper profiles with mpiP), and parent-tree validation;
//! * [`npb`] — NAS Parallel Benchmark kernels (CG, EP, MG, FT, IS, LU)
//!   re-implemented against this crate's MPI API with their original
//!   communication skeletons and self-verification.
//!
//! Computation is charged to the virtual clock through a per-kernel
//! work model (`ns` per edge / flop / gridpoint), so communication and
//! computation trade off exactly as in the paper's Fig. 3(a) breakdown.

#![forbid(unsafe_code)]
pub mod graph500;
pub mod npb;

pub use graph500::{FtRankOutcome, Graph500Config, Graph500Result};
pub use npb::{Kernel, KernelResult, NpbClass};
