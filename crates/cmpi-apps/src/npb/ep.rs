//! EP — embarrassingly parallel random-number statistics.
//!
//! Each rank generates its disjoint slice of Gaussian pairs via the
//! Marsaglia polar method over a counter-based PRNG, tallies annulus
//! counts, and the job ends with one small allreduce — NPB's
//! communication-free baseline (the flat bars of Fig. 12).

use cmpi_cluster::SimTime;
use cmpi_core::{Mpi, ReduceOp};

use super::NpbClass;
use crate::graph500::generator::splitmix64;

fn log2_pairs(class: NpbClass) -> u32 {
    match class {
        NpbClass::S => 15,
        NpbClass::W => 17,
        NpbClass::A => 19,
    }
}

/// Modelled cost per sampled pair, ns (EP is compute-bound).
const NS_PER_PAIR: u64 = 400;

fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Run EP; returns (verified, timed-section span).
pub fn run(mpi: &mut Mpi, class: NpbClass) -> (bool, SimTime) {
    let total: u64 = 1 << log2_pairs(class);
    let ranks = mpi.size() as u64;
    let rank = mpi.rank() as u64;
    let per = total.div_ceil(ranks);
    let lo = (rank * per).min(total);
    let hi = ((rank + 1) * per).min(total);

    mpi.barrier();
    let t0 = mpi.now();
    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    let mut counts = [0u64; 10];
    let mut accepted = 0u64;
    for i in lo..hi {
        let a = unit(splitmix64(0xE9 ^ (i * 2))) * 2.0 - 1.0;
        let b = unit(splitmix64(0xE9 ^ (i * 2 + 1))) * 2.0 - 1.0;
        let t = a * a + b * b;
        if t <= 1.0 && t > 0.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let (x, y) = (a * f, b * f);
            sx += x;
            sy += y;
            let m = x.abs().max(y.abs()) as usize;
            if m < counts.len() {
                counts[m] += 1;
            }
            accepted += 1;
        }
    }
    mpi.compute_items(hi - lo, NS_PER_PAIR);

    // The single communication step: global sums.
    let sums = mpi.allreduce(&[sx, sy], ReduceOp::Sum);
    let gcounts = mpi.allreduce(&counts, ReduceOp::Sum);
    let gaccepted = mpi.allreduce(&[accepted], ReduceOp::Sum)[0];
    let span = mpi.now() - t0;

    // Verification: acceptance rate near pi/4, annulus counts total the
    // accepted pairs, moments of the standard normal are small.
    let rate = gaccepted as f64 / total as f64;
    let counted: u64 = gcounts.iter().sum();
    let mean_x = sums[0] / gaccepted as f64;
    let mean_y = sums[1] / gaccepted as f64;
    let verified = (rate - std::f64::consts::FRAC_PI_4).abs() < 0.02
        && counted == gaccepted
        && mean_x.abs() < 0.05
        && mean_y.abs() < 0.05;
    (verified, span)
}
