//! NAS Parallel Benchmark kernels, re-implemented with their original
//! communication skeletons:
//!
//! | kernel | pattern (what the paper's Fig. 12 exercises)            |
//! |--------|---------------------------------------------------------|
//! | CG     | sparse mat-vec allgather + dot-product allreduce        |
//! | EP     | pure compute + one small allreduce                      |
//! | MG     | nearest-neighbour halo exchange across grid levels      |
//! | FT     | global transpose (`alltoall`) between local FFT passes  |
//! | IS     | bucket histogram allreduce + `alltoallv` key exchange   |
//! | LU     | pipelined wavefront point-to-point chain                |
//!
//! Problem sizes are reduced relative to the paper's Class D so the suite
//! runs in CI; every kernel really computes (and self-verifies) its
//! numerics, while bulk flop time is charged through the virtual-clock
//! work model.

pub mod cg;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;

use cmpi_cluster::SimTime;
use cmpi_core::{JobSpec, JobStats};

/// Problem-size class (reduced re-interpretations of the NPB classes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NpbClass {
    /// Smallest (unit tests).
    S,
    /// Workstation (integration tests).
    W,
    /// The figure harness default.
    A,
}

/// Which kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Conjugate gradient.
    Cg,
    /// Embarrassingly parallel.
    Ep,
    /// Multigrid.
    Mg,
    /// 2-D FFT (reduced-dimension FT).
    Ft,
    /// Integer sort.
    Is,
    /// SSOR wavefront pipeline.
    Lu,
}

impl Kernel {
    /// All kernels in the order Fig. 12 lists them.
    pub const ALL: [Kernel; 6] = [
        Kernel::Cg,
        Kernel::Ep,
        Kernel::Ft,
        Kernel::Is,
        Kernel::Lu,
        Kernel::Mg,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Cg => "CG",
            Kernel::Ep => "EP",
            Kernel::Mg => "MG",
            Kernel::Ft => "FT",
            Kernel::Is => "IS",
            Kernel::Lu => "LU",
        }
    }
}

/// Outcome of one kernel run.
#[derive(Clone, Debug)]
pub struct KernelResult {
    /// Which kernel ran.
    pub kernel: Kernel,
    /// Problem class.
    pub class: NpbClass,
    /// Self-verification passed on every rank.
    pub verified: bool,
    /// Timed-section virtual time (max across ranks).
    pub elapsed: SimTime,
    /// Job-wide communication/recovery statistics.
    pub stats: JobStats,
}

/// Run one kernel on a job spec.
pub fn run(spec: &JobSpec, kernel: Kernel, class: NpbClass) -> KernelResult {
    let r = spec.run(move |mpi| match kernel {
        Kernel::Cg => cg::run(mpi, class),
        Kernel::Ep => ep::run(mpi, class),
        Kernel::Mg => mg::run(mpi, class),
        Kernel::Ft => ft::run(mpi, class),
        Kernel::Is => is::run(mpi, class),
        Kernel::Lu => lu::run(mpi, class),
    });
    let verified = r.results.iter().all(|(ok, _)| *ok);
    let elapsed = r
        .results
        .iter()
        .map(|(_, t)| *t)
        .fold(SimTime::ZERO, SimTime::max);
    KernelResult {
        kernel,
        class,
        verified,
        elapsed,
        stats: r.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpi_cluster::{DeploymentScenario, NamespaceSharing};
    use cmpi_core::LocalityPolicy;

    fn spec() -> JobSpec {
        JobSpec::new(DeploymentScenario::containers(
            1,
            2,
            4,
            NamespaceSharing::default(),
        ))
    }

    #[test]
    fn every_kernel_verifies_class_s() {
        for k in Kernel::ALL {
            let r = run(&spec(), k, NpbClass::S);
            assert!(r.verified, "{} failed verification", k.name());
            assert!(r.elapsed > SimTime::ZERO, "{} recorded no time", k.name());
        }
    }

    #[test]
    fn kernels_faster_with_locality_detector() {
        // Fig. 12 shape: Opt < Def for communication-heavy kernels.
        for k in [Kernel::Cg, Kernel::Ft, Kernel::Is] {
            let opt = run(
                &spec().with_policy(LocalityPolicy::ContainerDetector),
                k,
                NpbClass::S,
            );
            let def = run(
                &spec().with_policy(LocalityPolicy::Hostname),
                k,
                NpbClass::S,
            );
            assert!(opt.verified && def.verified);
            assert!(
                opt.elapsed < def.elapsed,
                "{}: opt {} must beat def {}",
                k.name(),
                opt.elapsed,
                def.elapsed
            );
        }
    }

    #[test]
    fn ep_is_insensitive_to_policy() {
        // EP barely communicates: Def and Opt must be within a few
        // percent (paper shows EP as the flat bar in Fig. 12).
        let opt = run(
            &spec().with_policy(LocalityPolicy::ContainerDetector),
            Kernel::Ep,
            NpbClass::S,
        );
        let def = run(
            &spec().with_policy(LocalityPolicy::Hostname),
            Kernel::Ep,
            NpbClass::S,
        );
        let gap = (def.elapsed.as_ns() as f64 - opt.elapsed.as_ns() as f64).abs()
            / opt.elapsed.as_ns() as f64;
        assert!(gap < 0.05, "EP gap {gap:.3}");
    }
}
