//! FT — distributed FFT with global transposes.
//!
//! Reduced-dimension FT: a 2-D complex FFT over an `n1 × n2` array,
//! row-distributed. Each pass FFTs the local rows, then the array is
//! transposed with `alltoall` — the signature communication pattern of
//! NPB FT (the paper's most alltoall-heavy workload). Verification is
//! exact: forward transform followed by inverse must reproduce the
//! original field to round-off.

use cmpi_cluster::SimTime;
use cmpi_core::Mpi;

use super::NpbClass;
use crate::graph500::generator::splitmix64;

fn dims(class: NpbClass) -> (usize, usize, usize) {
    // (n1, n2, iterations) — both powers of two.
    match class {
        NpbClass::S => (64, 64, 2),
        NpbClass::W => (128, 128, 2),
        NpbClass::A => (256, 256, 3),
    }
}

/// Modelled cost per butterfly, ns.
const NS_PER_BUTTERFLY: u64 = 6;

/// In-place radix-2 complex FFT (`inverse` flips the twiddle sign and
/// scales by 1/n).
pub fn fft(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cr - im[i + k + len / 2] * ci,
                    re[i + k + len / 2] * ci + im[i + k + len / 2] * cr,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for x in re.iter_mut() {
            *x *= inv;
        }
        for x in im.iter_mut() {
            *x *= inv;
        }
    }
}

/// Distributed transpose of a row-distributed `n1 × n2` array (rows of
/// length `n2`, `rows_per` rows per rank) into the row-distributed
/// transpose (`n2 × n1`).
fn transpose(
    mpi: &mut Mpi,
    re: &[f64],
    im: &[f64],
    n2: usize,
    rows_per: usize,
) -> (Vec<f64>, Vec<f64>) {
    let p = mpi.size();
    let cols_per = n2 / p;
    // Pack interleaved (re, im) blocks destined for each peer: peer `d`
    // receives columns [d*cols_per, (d+1)*cols_per) of my rows.
    let block = rows_per * cols_per;
    let mut sendbuf = vec![0.0f64; 2 * block * p];
    for d in 0..p {
        for r in 0..rows_per {
            for c in 0..cols_per {
                let src = r * n2 + d * cols_per + c;
                let dst = d * 2 * block + (r * cols_per + c) * 2;
                sendbuf[dst] = re[src];
                sendbuf[dst + 1] = im[src];
            }
        }
    }
    mpi.compute_items((rows_per * n2) as u64, 2);
    let recvbuf = mpi.alltoall(&sendbuf, 2 * block);
    // Unpack: my transposed rows are the old columns I own; their length
    // is n1 = rows_per * p.
    let n1 = rows_per * p;
    let mut tre = vec![0.0f64; cols_per * n1];
    let mut tim = vec![0.0f64; cols_per * n1];
    for s in 0..p {
        for r in 0..rows_per {
            for c in 0..cols_per {
                let src = s * 2 * block + (r * cols_per + c) * 2;
                // Column c (global row c + rank*cols_per of the transpose),
                // element index s*rows_per + r.
                let dst = c * n1 + s * rows_per + r;
                tre[dst] = recvbuf[src];
                tim[dst] = recvbuf[src + 1];
            }
        }
    }
    mpi.compute_items((cols_per * n1) as u64, 2);
    (tre, tim)
}

/// Run FT; returns (verified, timed-section span).
pub fn run(mpi: &mut Mpi, class: NpbClass) -> (bool, SimTime) {
    let (mut n1, mut n2, iters) = dims(class);
    let p = mpi.size();
    // The pencil decomposition needs both dimensions divisible by the
    // rank count; grow the grid to the next power of two >= p when a
    // large job outgrows the class size (mirrors how NPB pins class to
    // rank-count ranges).
    let min_dim = p.next_power_of_two();
    n1 = n1.max(min_dim);
    n2 = n2.max(min_dim);
    assert!(
        n1 % p == 0 && n2 % p == 0,
        "FT grid must divide the rank count"
    );
    let rows_per = n1 / p;
    let rank = mpi.rank();

    // Deterministic complex field.
    let mut re = vec![0.0f64; rows_per * n2];
    let mut im = vec![0.0f64; rows_per * n2];
    for r in 0..rows_per {
        for c in 0..n2 {
            let h = splitmix64(((rank * rows_per + r) as u64) << 32 | c as u64);
            re[r * n2 + c] = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            im[r * n2 + c] = ((splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
        }
    }
    let orig_re = re.clone();
    let orig_im = im.clone();

    mpi.barrier();
    let t0 = mpi.now();
    let mut verified = true;
    for _ in 0..iters {
        // Forward: FFT rows (length n2), transpose, FFT rows (length n1),
        // transpose back.
        for pass in 0..2 {
            let width = if pass == 0 { n2 } else { n1 };
            let rows = re.len() / width;
            for r in 0..rows {
                fft(
                    &mut re[r * width..(r + 1) * width],
                    &mut im[r * width..(r + 1) * width],
                    false,
                );
            }
            mpi.compute_items(
                (rows * width * width.trailing_zeros() as usize) as u64,
                NS_PER_BUTTERFLY,
            );
            let rp = if pass == 0 { rows_per } else { n2 / p };
            let w = if pass == 0 { n2 } else { n1 };
            let (tre, tim) = transpose(mpi, &re, &im, w, rp);
            re = tre;
            im = tim;
        }
        // Inverse: same dance with inverse FFTs.
        for pass in 0..2 {
            let width = if pass == 0 { n2 } else { n1 };
            let rows = re.len() / width;
            for r in 0..rows {
                fft(
                    &mut re[r * width..(r + 1) * width],
                    &mut im[r * width..(r + 1) * width],
                    true,
                );
            }
            mpi.compute_items(
                (rows * width * width.trailing_zeros() as usize) as u64,
                NS_PER_BUTTERFLY,
            );
            let rp = if pass == 0 { rows_per } else { n2 / p };
            let w = if pass == 0 { n2 } else { n1 };
            let (tre, tim) = transpose(mpi, &re, &im, w, rp);
            re = tre;
            im = tim;
        }
        // Round trip must reproduce the original field.
        let err = re
            .iter()
            .zip(&orig_re)
            .chain(im.iter().zip(&orig_im))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        verified &= err < 1e-9;
    }
    let span = mpi.now() - t0;
    (verified, span)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_roundtrip_identity() {
        let n = 64;
        let re0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let im0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft(&mut re, &mut im, false);
        fft(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] - re0[i]).abs() < 1e-10);
            assert!((im[i] - im0[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0; 16];
        let mut im = vec![0.0; 16];
        re[0] = 1.0;
        fft(&mut re, &mut im, false);
        for i in 0..16 {
            assert!((re[i] - 1.0).abs() < 1e-12);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_parseval_energy_preserved() {
        let n = 128usize;
        let re0: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let im0 = vec![0.0f64; n];
        let e0: f64 = re0.iter().map(|x| x * x).sum();
        let mut re = re0;
        let mut im = im0;
        fft(&mut re, &mut im, false);
        let e1: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!((e0 - e1).abs() < 1e-8, "{e0} vs {e1}");
    }
}
