//! LU — SSOR wavefront pipeline.
//!
//! The defining communication of NPB LU is the pipelined lower/upper
//! triangular sweep: each rank waits for boundary data from its
//! predecessor, relaxes its slab plane by plane, and forwards boundary
//! planes to its successor — a chain of small-to-medium point-to-point
//! messages that benefits directly from fast intra-host channels.
//!
//! We model the slab as `nz` planes of an `n × n` grid distributed along
//! z. Verification: every update is a convex combination of field
//! values, so the deviation from the global mean must shrink over the
//! run; all ranks must also agree on the final checksum.

use cmpi_cluster::SimTime;
use cmpi_core::{Mpi, ReduceOp};

use super::NpbClass;
use crate::graph500::generator::splitmix64;

fn dims(class: NpbClass) -> (usize, usize, usize) {
    // (n, planes per rank, sweeps)
    match class {
        NpbClass::S => (24, 4, 3),
        NpbClass::W => (40, 4, 4),
        NpbClass::A => (64, 6, 5),
    }
}

/// Modelled cost per grid point per relaxation, ns.
const NS_PER_POINT: u64 = 12;

/// Run LU; returns (verified, timed-section span).
pub fn run(mpi: &mut Mpi, class: NpbClass) -> (bool, SimTime) {
    let (n, planes, sweeps) = dims(class);
    let p = mpi.size();
    let rank = mpi.rank();
    let plane_len = n * n;

    // Deterministic initial slab.
    let mut slab: Vec<f64> = (0..planes * plane_len)
        .map(|i| {
            let h = splitmix64(((rank * planes * plane_len + i) as u64) ^ 0x1u64);
            (h >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect();

    mpi.barrier();
    let t0 = mpi.now();
    let mut verified = true;
    let mut first_res = None;
    let mut last_res = f64::INFINITY;
    for sweep in 0..sweeps {
        // Lower sweep: pipeline rank 0 -> p-1. The global bottom boundary
        // is reflective (Neumann): rank 0 seeds the pipeline with its own
        // first plane so every update is a convex combination of field
        // values (which is what makes the residual check sound).
        let mut inflow = slab[..plane_len].to_vec();
        if rank > 0 {
            mpi.recv(&mut inflow, rank - 1, 20 + sweep as u32);
        }
        for z in 0..planes {
            relax_plane(&mut slab[z * plane_len..(z + 1) * plane_len], &inflow, n);
            inflow.copy_from_slice(&slab[z * plane_len..(z + 1) * plane_len]);
            mpi.compute_items(plane_len as u64, NS_PER_POINT);
        }
        if rank + 1 < p {
            mpi.send(&inflow, rank + 1, 20 + sweep as u32);
        }
        // Upper sweep: pipeline p-1 -> 0, reflective at the top.
        let mut inflow = slab[(planes - 1) * plane_len..].to_vec();
        if rank + 1 < p {
            mpi.recv(&mut inflow, rank + 1, 40 + sweep as u32);
        }
        for z in (0..planes).rev() {
            relax_plane(&mut slab[z * plane_len..(z + 1) * plane_len], &inflow, n);
            inflow.copy_from_slice(&slab[z * plane_len..(z + 1) * plane_len]);
            mpi.compute_items(plane_len as u64, NS_PER_POINT);
        }
        if rank > 0 {
            mpi.send(&inflow, rank - 1, 40 + sweep as u32);
        }
        // Residual: the relaxation averages, so the field flattens and
        // the deviation from the global mean must shrink.
        let local_sum: f64 = slab.iter().sum();
        let sums = mpi.allreduce(&[local_sum, slab.len() as f64], ReduceOp::Sum);
        let mean = sums[0] / sums[1];
        let local_dev: f64 = slab.iter().map(|x| (x - mean) * (x - mean)).sum();
        let res = mpi.allreduce(&[local_dev], ReduceOp::Sum)[0];
        verified &= res.is_finite();
        first_res.get_or_insert(res);
        last_res = res;
    }
    // The sweep is built from convex combinations, so over the whole run
    // the field must flatten substantially (per-sweep monotonicity can
    // jitter while boundary information propagates down the pipeline).
    verified &= last_res < first_res.unwrap_or(f64::INFINITY) * 0.9;
    let span = mpi.now() - t0;

    // Cross-rank agreement on the final checksum (all ranks must compute
    // the identical reduced value).
    let checksum = mpi.allreduce(&[slab.iter().sum::<f64>()], ReduceOp::Sum)[0];
    verified &= checksum.is_finite();
    (verified, span)
}

/// One Gauss–Seidel-style relaxation of a plane against the previous
/// plane (`inflow`).
fn relax_plane(plane: &mut [f64], inflow: &[f64], n: usize) {
    for i in 0..n {
        for j in 0..n {
            let idx = i * n + j;
            let west = if j > 0 { plane[idx - 1] } else { plane[idx] };
            let north = if i > 0 { plane[idx - n] } else { plane[idx] };
            plane[idx] = 0.25 * (plane[idx] + west + north + inflow[idx]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxation_contracts_towards_uniform() {
        let n = 8;
        let mut plane: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64).collect();
        let inflow = vec![2.0f64; n * n];
        let dev = |p: &[f64]| {
            let m = p.iter().sum::<f64>() / p.len() as f64;
            p.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
        };
        let d0 = dev(&plane);
        for _ in 0..10 {
            relax_plane(&mut plane, &inflow, n);
        }
        assert!(dev(&plane) < d0);
    }
}
