//! CG — conjugate gradient with a random sparse SPD matrix.
//!
//! Row-block distribution; the mat-vec gathers the full iterate with
//! `allgather`, dot products use `allreduce` — CG's NPB communication
//! signature. Verification: the solver must actually converge (residual
//! drop) and every rank must agree on the final zeta estimate bit-for-bit.

use cmpi_cluster::SimTime;
use cmpi_core::{Mpi, ReduceOp};

use super::NpbClass;
use crate::graph500::generator::splitmix64;

struct Params {
    n: usize,
    nnz_per_row: usize,
    cg_iters: usize,
    outer_iters: usize,
}

fn params(class: NpbClass) -> Params {
    match class {
        NpbClass::S => Params {
            n: 512,
            nnz_per_row: 8,
            cg_iters: 12,
            outer_iters: 2,
        },
        NpbClass::W => Params {
            n: 2048,
            nnz_per_row: 10,
            cg_iters: 15,
            outer_iters: 3,
        },
        NpbClass::A => Params {
            n: 8192,
            nnz_per_row: 12,
            cg_iters: 15,
            outer_iters: 4,
        },
    }
}

/// One owned row: column indices and values (symmetric positive definite
/// by diagonal dominance).
struct LocalMatrix {
    #[allow(dead_code)]
    row_lo: usize,
    cols: Vec<Vec<usize>>,
    vals: Vec<Vec<f64>>,
}

fn build_matrix(p: &Params, rank: usize, ranks: usize, seed: u64) -> LocalMatrix {
    let per = p.n.div_ceil(ranks);
    let row_lo = (rank * per).min(p.n);
    let row_hi = ((rank + 1) * per).min(p.n);
    let mut cols = Vec::with_capacity(row_hi - row_lo);
    let mut vals = Vec::with_capacity(row_hi - row_lo);
    for r in row_lo..row_hi {
        let mut c = Vec::with_capacity(p.nnz_per_row + 1);
        let mut v = Vec::with_capacity(p.nnz_per_row + 1);
        let mut off_diag_sum = 0.0;
        for k in 0..p.nnz_per_row {
            // Symmetric pattern: pair (r, j) with value depending only on
            // the unordered pair, so A stays symmetric.
            let j = (splitmix64(seed ^ ((r as u64) << 32) ^ (r as u64 * 31 + k as u64))
                % p.n as u64) as usize;
            if j == r {
                continue;
            }
            let (a, b) = (r.min(j) as u64, r.max(j) as u64);
            let w = (splitmix64(seed ^ a << 20 ^ b) % 1000) as f64 / 1000.0;
            c.push(j);
            v.push(-w);
            off_diag_sum += w;
        }
        // Diagonal dominance => SPD.
        c.push(r);
        v.push(off_diag_sum + 1.0 + (r % 7) as f64 * 0.1);
        cols.push(c);
        vals.push(v);
    }
    LocalMatrix { row_lo, cols, vals }
}

// NOTE: the pattern above is *not* exactly symmetric (row r samples its
// own columns), but the diagonal strictly dominates the row sums, which
// keeps CG stable enough to converge — the verification below measures
// actual residual reduction rather than assuming textbook SPD.

/// Run CG; returns (verified, timed-section span).
pub fn run(mpi: &mut Mpi, class: NpbClass) -> (bool, SimTime) {
    let p = params(class);
    let ranks = mpi.size();
    let per = p.n.div_ceil(ranks);
    let a = build_matrix(&p, mpi.rank(), ranks, 0xC6);
    let local_n = a.cols.len();
    mpi.compute_items((local_n * p.nnz_per_row) as u64, 8);

    mpi.barrier();
    let t0 = mpi.now();
    let mut verified = true;
    let mut x = vec![1.0f64; local_n];
    for _ in 0..p.outer_iters {
        // Solve A z = x with `cg_iters` CG steps.
        let mut z = vec![0.0f64; local_n];
        let mut r: Vec<f64> = x.clone();
        let mut q = r.clone();
        let rho0 = dot(mpi, &r, &r);
        let mut rho = rho0;
        for _ in 0..p.cg_iters {
            let aq = matvec(mpi, &a, &q, per, local_n, p.n);
            let alpha = rho / dot(mpi, &q, &aq);
            for i in 0..local_n {
                z[i] += alpha * q[i];
                r[i] -= alpha * aq[i];
            }
            let rho_new = dot(mpi, &r, &r);
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..local_n {
                q[i] = r[i] + beta * q[i];
            }
        }
        // Verification: CG must have reduced the residual substantially.
        verified &= rho.is_finite() && rho < rho0 * 1e-3;
        // zeta update: x = z / ||z||.
        let znorm = dot(mpi, &z, &z).sqrt();
        verified &= znorm.is_finite() && znorm > 0.0;
        for i in 0..local_n {
            x[i] = z[i] / znorm;
        }
    }
    let span = mpi.now() - t0;
    (verified, span)
}

/// Distributed dot product (allreduce).
fn dot(mpi: &mut Mpi, a: &[f64], b: &[f64]) -> f64 {
    let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    mpi.compute_items(a.len() as u64, 2);
    mpi.allreduce(&[local], ReduceOp::Sum)[0]
}

/// Distributed mat-vec: allgather the iterate, multiply the local rows.
fn matvec(
    mpi: &mut Mpi,
    a: &LocalMatrix,
    q: &[f64],
    per: usize,
    local_n: usize,
    n: usize,
) -> Vec<f64> {
    let mut padded = q.to_vec();
    padded.resize(per, 0.0);
    let full = mpi.allgather(&padded);
    let mut out = vec![0.0f64; local_n];
    let mut flops = 0u64;
    for (i, (cols, vals)) in a.cols.iter().zip(&a.vals).enumerate() {
        let mut acc = 0.0;
        for (&j, &v) in cols.iter().zip(vals) {
            debug_assert!(j < n);
            acc += v * full[j];
        }
        flops += cols.len() as u64;
        out[i] = acc;
    }
    mpi.compute_items(flops, 3);
    out
}
