//! IS — parallel integer (bucket) sort.
//!
//! Keys are generated per rank, a global histogram (`allreduce`) decides
//! bucket ownership, keys are redistributed with `alltoallv`, and each
//! rank sorts its buckets locally. Verification: global order across rank
//! boundaries (neighbour `sendrecv`) and an exact count conservation
//! check.

use bytes::{BufMut, Bytes, BytesMut};
use cmpi_cluster::SimTime;
use cmpi_core::{Mpi, ReduceOp};

use super::NpbClass;
use crate::graph500::generator::splitmix64;

fn sizes(class: NpbClass) -> (usize, u32) {
    // (keys per rank, log2 of max key)
    match class {
        NpbClass::S => (1 << 12, 11),
        NpbClass::W => (1 << 14, 14),
        NpbClass::A => (1 << 16, 16),
    }
}

/// Modelled cost per key per pass, ns.
const NS_PER_KEY: u64 = 5;

fn encode_keys(keys: &[u32]) -> Bytes {
    let mut b = BytesMut::with_capacity(keys.len() * 4);
    for &k in keys {
        b.put_u32_le(k);
    }
    b.freeze()
}

fn decode_keys(data: &[u8]) -> Vec<u32> {
    assert_eq!(data.len() % 4, 0, "corrupt key batch");
    data.chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Run IS; returns (verified, timed-section span).
pub fn run(mpi: &mut Mpi, class: NpbClass) -> (bool, SimTime) {
    let (per_rank, log_max) = sizes(class);
    let max_key = 1u32 << log_max;
    let p = mpi.size();
    let rank = mpi.rank();

    // Key generation (counter-based, disjoint per rank). NPB IS uses a
    // Gaussian-ish sum of uniforms; we use the average of two to get a
    // non-uniform distribution that exercises uneven buckets.
    let mut keys = Vec::with_capacity(per_rank);
    for i in 0..per_rank {
        let h1 = splitmix64(((rank * per_rank + i) as u64) << 1);
        let h2 = splitmix64((((rank * per_rank + i) as u64) << 1) | 1);
        let k = ((h1 % max_key as u64 + h2 % max_key as u64) / 2) as u32;
        keys.push(k);
    }
    mpi.compute_items(per_rank as u64, NS_PER_KEY);

    mpi.barrier();
    let t0 = mpi.now();

    // Global histogram over p buckets of the key space.
    let bucket_width = max_key.div_ceil(p as u32).max(1);
    let bucket_of = |k: u32| ((k / bucket_width) as usize).min(p - 1);
    let mut local_hist = vec![0u64; p];
    for &k in &keys {
        local_hist[bucket_of(k)] += 1;
    }
    mpi.compute_items(per_rank as u64, NS_PER_KEY);
    let global_hist = mpi.allreduce(&local_hist, ReduceOp::Sum);

    // Redistribute: bucket b goes to rank b.
    let mut outgoing: Vec<Vec<u32>> = vec![Vec::new(); p];
    for &k in &keys {
        outgoing[bucket_of(k)].push(k);
    }
    let blocks: Vec<Bytes> = outgoing.iter().map(|ks| encode_keys(ks)).collect();
    let incoming = mpi.alltoallv_bytes(blocks);

    // Local sort.
    let mut mine: Vec<u32> = incoming.iter().flat_map(|b| decode_keys(b)).collect();
    mine.sort_unstable();
    let sort_cost = (mine.len().max(1) as u64) * (mine.len().max(2).ilog2() as u64);
    mpi.compute_items(sort_cost, 2);
    let span = mpi.now() - t0;

    // --- verification ------------------------------------------------------
    let mut verified = true;
    // (a) I received exactly the histogram's count for my bucket.
    verified &= mine.len() as u64 == global_hist[rank];
    // (b) Count conservation.
    let total = mpi.allreduce(&[mine.len() as u64], ReduceOp::Sum)[0];
    verified &= total == (per_rank * p) as u64;
    // (c) Keys are within my bucket range.
    let lo = rank as u32 * bucket_width;
    let hi = if rank == p - 1 {
        max_key
    } else {
        (rank as u32 + 1) * bucket_width
    };
    verified &= mine.iter().all(|&k| k >= lo && k < hi);
    // (d) Cross-rank order: my max <= right neighbour's min.
    if p > 1 {
        let my_max = mine.last().copied().unwrap_or(0);
        let my_min = mine.first().copied().unwrap_or(u32::MAX);
        let left = (rank + p - 1) % p;
        let right = (rank + 1) % p;
        let mut got = [0u32];
        mpi.sendrecv(&[my_min], left, 7, &mut got, right, 7);
        if rank < p - 1 {
            let right_min = got[0];
            verified &= my_max <= right_min || mine.is_empty();
        }
    }
    (verified, span)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_codec_roundtrips() {
        let ks = vec![0u32, 1, u32::MAX, 42];
        assert_eq!(decode_keys(&encode_keys(&ks)), ks);
    }

    #[test]
    #[should_panic(expected = "corrupt key batch")]
    fn bad_batch_rejected() {
        decode_keys(&[1, 2, 3]);
    }
}
