//! MG — multigrid V-cycles with nearest-neighbour halo exchange.
//!
//! A 1-D (z) decomposition of an `n × n × nz` grid solving a Poisson-like
//! smoothing problem: each V-cycle smooths on a hierarchy of coarsened
//! grids, exchanging boundary planes with the two z-neighbours at every
//! level — NPB MG's defining pattern of many small-to-medium
//! `sendrecv`s. Verification: smoothing is a contraction, so the residual
//! against the (known) uniform fixed point must decrease every cycle.

use cmpi_cluster::SimTime;
use cmpi_core::{Mpi, ReduceOp};

use super::NpbClass;
use crate::graph500::generator::splitmix64;

fn dims(class: NpbClass) -> (usize, usize, usize) {
    // (n, planes per rank at the finest level, v-cycles)
    match class {
        NpbClass::S => (16, 4, 2),
        NpbClass::W => (32, 4, 3),
        NpbClass::A => (64, 8, 3),
    }
}

/// Modelled cost per grid point per smoothing pass, ns.
const NS_PER_POINT: u64 = 9;

struct Level {
    n: usize,
    planes: usize,
    field: Vec<f64>,
}

/// Run MG; returns (verified, timed-section span).
pub fn run(mpi: &mut Mpi, class: NpbClass) -> (bool, SimTime) {
    let (n0, planes0, cycles) = dims(class);
    let p = mpi.size();
    let rank = mpi.rank();

    // Finest level: deterministic field.
    let finest: Vec<f64> = (0..planes0 * n0 * n0)
        .map(|i| {
            let h = splitmix64(((rank * planes0 * n0 * n0 + i) as u64) ^ 0x4D47);
            (h >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect();

    mpi.barrier();
    let t0 = mpi.now();
    let mut field = finest;
    let mut verified = true;
    let mut prev = deviation(mpi, &field);
    for _ in 0..cycles {
        v_cycle(mpi, &mut field, n0, planes0, rank, p);
        let dev = deviation(mpi, &field);
        verified &= dev.is_finite() && dev <= prev + 1e-12;
        prev = dev;
    }
    let span = mpi.now() - t0;
    (verified, span)
}

/// Global squared deviation from the global mean (the smoothing residual).
fn deviation(mpi: &mut Mpi, field: &[f64]) -> f64 {
    let sums = mpi.allreduce(
        &[field.iter().sum::<f64>(), field.len() as f64],
        ReduceOp::Sum,
    );
    let mean = sums[0] / sums[1];
    let dev: f64 = field.iter().map(|x| (x - mean) * (x - mean)).sum();
    mpi.allreduce(&[dev], ReduceOp::Sum)[0]
}

/// One V-cycle: smooth, restrict (coarsen in-plane), smooth, ...,
/// then prolong back up with post-smoothing.
fn v_cycle(mpi: &mut Mpi, field: &mut Vec<f64>, n0: usize, planes: usize, rank: usize, p: usize) {
    // Build the level hierarchy by in-plane coarsening (z-extent and the
    // decomposition stay fixed, like NPB MG's per-process z-pencils).
    let mut levels: Vec<Level> = vec![Level {
        n: n0,
        planes,
        field: std::mem::take(field),
    }];
    while levels.last().unwrap().n > 4 {
        let last = levels.last().unwrap();
        let nc = last.n / 2;
        let mut coarse = vec![0.0f64; last.planes * nc * nc];
        for z in 0..last.planes {
            for i in 0..nc {
                for j in 0..nc {
                    let f =
                        |ii: usize, jj: usize| last.field[z * last.n * last.n + ii * last.n + jj];
                    coarse[z * nc * nc + i * nc + j] = 0.25
                        * (f(2 * i, 2 * j)
                            + f(2 * i + 1, 2 * j)
                            + f(2 * i, 2 * j + 1)
                            + f(2 * i + 1, 2 * j + 1));
                }
            }
        }
        mpi.compute_items((last.planes * nc * nc) as u64, 4);
        levels.push(Level {
            n: nc,
            planes: last.planes,
            field: coarse,
        });
    }
    // Smooth down the hierarchy (restriction already applied), then back
    // up with prolongation + post-smoothing.
    for lvl in levels.iter_mut() {
        smooth(mpi, lvl, rank, p);
    }
    for k in (0..levels.len() - 1).rev() {
        let (fine, coarse) = {
            let (a, b) = levels.split_at_mut(k + 1);
            (&mut a[k], &b[0])
        };
        // Prolong: blend the coarse correction into the fine grid.
        let nf = fine.n;
        let nc = coarse.n;
        for z in 0..fine.planes {
            for i in 0..nf {
                for j in 0..nf {
                    let c =
                        coarse.field[z * nc * nc + (i / 2).min(nc - 1) * nc + (j / 2).min(nc - 1)];
                    let x = &mut fine.field[z * nf * nf + i * nf + j];
                    *x = 0.5 * (*x + c);
                }
            }
        }
        mpi.compute_items((fine.planes * nf * nf) as u64, 3);
        smooth(mpi, fine, rank, p);
    }
    *field = std::mem::take(&mut levels[0].field);
}

/// One smoothing pass with halo exchange of boundary planes.
fn smooth(mpi: &mut Mpi, lvl: &mut Level, rank: usize, p: usize) {
    let n = lvl.n;
    let plane = n * n;
    // Exchange boundary planes with z-neighbours (non-periodic).
    let up = if rank + 1 < p { Some(rank + 1) } else { None };
    let down = if rank > 0 { Some(rank - 1) } else { None };
    let top: Vec<f64> = lvl.field[(lvl.planes - 1) * plane..].to_vec();
    let bottom: Vec<f64> = lvl.field[..plane].to_vec();
    let mut halo_down = bottom.clone();
    let mut halo_up = top.clone();
    // Send top up / receive from below, then send bottom down / receive
    // from above, with sendrecv to stay deadlock-free.
    match (up, down) {
        (Some(u), Some(d)) => {
            mpi.sendrecv(&top, u, 60 + n as u32, &mut halo_down, d, 60 + n as u32);
            mpi.sendrecv(&bottom, d, 80 + n as u32, &mut halo_up, u, 80 + n as u32);
        }
        (Some(u), None) => {
            mpi.send(&top, u, 60 + n as u32);
            mpi.recv(&mut halo_up, u, 80 + n as u32);
        }
        (None, Some(d)) => {
            mpi.recv(&mut halo_down, d, 60 + n as u32);
            mpi.send(&bottom, d, 80 + n as u32);
        }
        (None, None) => {}
    }
    // Jacobi-ish smoothing with the halos as z-neighbours.
    let old = lvl.field.clone();
    for z in 0..lvl.planes {
        let below: &[f64] = if z == 0 {
            &halo_down
        } else {
            &old[(z - 1) * plane..z * plane]
        };
        let above: &[f64] = if z + 1 == lvl.planes {
            &halo_up
        } else {
            &old[(z + 1) * plane..(z + 2) * plane]
        };
        for i in 0..n {
            for j in 0..n {
                let idx = i * n + j;
                let c = old[z * plane + idx];
                let w = if j > 0 { old[z * plane + idx - 1] } else { c };
                let e = if j + 1 < n {
                    old[z * plane + idx + 1]
                } else {
                    c
                };
                let no = if i > 0 { old[z * plane + idx - n] } else { c };
                let s = if i + 1 < n {
                    old[z * plane + idx + n]
                } else {
                    c
                };
                lvl.field[z * plane + idx] =
                    (2.0 * c + w + e + no + s + below[idx] + above[idx]) / 8.0;
            }
        }
    }
    mpi.compute_items((lvl.planes * plane) as u64, NS_PER_POINT);
}
