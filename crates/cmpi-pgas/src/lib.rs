//! # cmpi-pgas — PGAS-style global arrays
//!
//! The paper's future work (Section VII) proposes "exploring the
//! performance characterization of other programming models (e.g. PGAS)
//! in container-based HPC cloud". This crate provides that programming
//! model on top of the locality-aware one-sided layer: a
//! [`GlobalArray`] is a block-distributed array any rank can read and
//! write by *global index*, with the channel selection — SHM direct copy,
//! CMA, or RDMA — inherited from the underlying MPI library. The same
//! container-locality effect the paper demonstrates for MPI therefore
//! carries over verbatim: under the hostname policy every remote access
//! between co-resident containers pays the HCA loopback; under the
//! container detector it is a shared-memory access.
//!
//! ```
//! use cmpi_cluster::{DeploymentScenario, NamespaceSharing};
//! use cmpi_core::JobSpec;
//! use cmpi_pgas::GlobalArray;
//!
//! let scenario = DeploymentScenario::containers(1, 2, 2, NamespaceSharing::default());
//! let r = JobSpec::new(scenario).run(|mpi| {
//!     let mut ga = GlobalArray::<u64>::new(mpi, 64);
//!     // Every rank writes its rank id at global index = its rank.
//!     ga.write(mpi, mpi.rank() as u64, &[mpi.rank() as u64]);
//!     ga.sync(mpi);
//!     // Everyone reads the whole array.
//!     let mut out = vec![0u64; 4];
//!     ga.read(mpi, 0, &mut out);
//!     out
//! });
//! assert_eq!(r.results[0][..4], [0, 1, 2, 3]);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
use std::marker::PhantomData;

use cmpi_core::{Mpi, MpiData, Window};

/// A block-distributed global array of fixed-size elements.
pub struct GlobalArray<T: MpiData> {
    win: Window,
    len: u64,
    /// Elements per rank (block size).
    per: u64,
    ranks: usize,
    _elem: PhantomData<T>,
}

impl<T: MpiData> GlobalArray<T> {
    /// Collectively create a global array of `len` elements,
    /// block-distributed over all ranks (the last block may be short).
    pub fn new(mpi: &mut Mpi, len: u64) -> Self {
        let ranks = mpi.size();
        let per = len.div_ceil(ranks as u64).max(1);
        let win = mpi.win_allocate((per as usize) * T::SIZE);
        GlobalArray {
            win,
            len,
            per,
            ranks,
            _elem: PhantomData,
        }
    }

    /// Total element count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements per rank block.
    pub fn block(&self) -> u64 {
        self.per
    }

    /// The (owner rank, byte offset) of global index `idx`.
    pub fn locate(&self, idx: u64) -> (usize, usize) {
        assert!(
            idx < self.len,
            "global index {idx} out of bounds ({})",
            self.len
        );
        let rank = (idx / self.per) as usize;
        debug_assert!(rank < self.ranks);
        (rank, (idx % self.per) as usize * T::SIZE)
    }

    /// The global index range `[lo, hi)` owned by `rank`.
    pub fn owned_range(&self, rank: usize) -> (u64, u64) {
        let lo = (rank as u64 * self.per).min(self.len);
        let hi = ((rank as u64 + 1) * self.per).min(self.len);
        (lo, hi)
    }

    /// Write `data` starting at global index `idx` (may span block
    /// boundaries). Remote completion is deferred to [`GlobalArray::sync`]
    /// / [`GlobalArray::flush`].
    pub fn write(&mut self, mpi: &mut Mpi, idx: u64, data: &[T]) {
        let mut off = 0usize;
        while off < data.len() {
            let gidx = idx + off as u64;
            let (rank, byte_off) = self.locate(gidx);
            let (_, hi) = self.owned_range(rank);
            let n = ((hi - gidx) as usize).min(data.len() - off);
            mpi.put(&mut self.win, rank, byte_off, &data[off..off + n]);
            off += n;
        }
    }

    /// Read `out.len()` elements starting at global index `idx`.
    pub fn read(&mut self, mpi: &mut Mpi, idx: u64, out: &mut [T]) {
        let mut off = 0usize;
        while off < out.len() {
            let gidx = idx + off as u64;
            let (rank, byte_off) = self.locate(gidx);
            let (_, hi) = self.owned_range(rank);
            let n = ((hi - gidx) as usize).min(out.len() - off);
            mpi.get(&mut self.win, rank, byte_off, &mut out[off..off + n]);
            off += n;
        }
    }

    /// Complete this rank's outstanding writes to `target`.
    pub fn flush(&mut self, mpi: &mut Mpi, target: usize) {
        mpi.flush(&mut self.win, target);
    }

    /// Global synchronization: all outstanding writes complete and every
    /// rank observes them (an RMA fence).
    pub fn sync(&mut self, mpi: &mut Mpi) {
        mpi.fence(&mut self.win);
    }

    /// Read this rank's own block (no communication).
    pub fn read_local(&self, mpi: &Mpi, out: &mut [T]) {
        let (lo, hi) = self.owned_range(mpi.rank());
        assert!(out.len() <= (hi - lo) as usize, "local read past block");
        mpi.win_read_local(&self.win, 0, out);
    }

    /// Write this rank's own block (no communication).
    pub fn write_local(&self, mpi: &Mpi, data: &[T]) {
        let (lo, hi) = self.owned_range(mpi.rank());
        assert!(data.len() <= (hi - lo) as usize, "local write past block");
        mpi.win_write_local(&self.win, 0, data);
    }
}

/// A GUPS-style random-access kernel: each rank performs `updates`
/// read-modify-writes at pseudo-random global indices, then the table is
/// checksummed. Returns (updates/second in virtual time, checksum).
///
/// This is the classic PGAS stress test: tiny accesses, no locality —
/// precisely the pattern that suffers most when co-resident containers
/// are mis-detected as remote. Unlike the original GUPS (which tolerates
/// a small fraction of lost updates from races), ranks here update
/// *disjoint* index sets (`idx ≡ rank (mod size)`), so the final table is
/// exactly reproducible — remote-access behaviour is unchanged because
/// the strided indices still land on every block.
pub fn gups(mpi: &mut Mpi, table_len: u64, updates: u64, seed: u64) -> (f64, u64) {
    let mut ga = GlobalArray::<u64>::new(mpi, table_len);
    // Initialize our block to the identity pattern.
    let (lo, hi) = ga.owned_range(mpi.rank());
    let init: Vec<u64> = (lo..hi).collect();
    ga.write_local(mpi, &init);
    ga.sync(mpi);

    let t0 = mpi.now();
    let ranks = mpi.size() as u64;
    let slots = (table_len / ranks).max(1);
    let mut x = seed ^ (mpi.rank() as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
    for _ in 0..updates {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let idx = ((x % slots) * ranks + mpi.rank() as u64) % table_len;
        let mut v = [0u64];
        ga.read(mpi, idx, &mut v);
        v[0] ^= x;
        ga.write(mpi, idx, &v);
        ga.flush(mpi, ga.locate(idx).0);
    }
    ga.sync(mpi);
    let span = mpi.now() - t0;

    // Checksum our block after everyone's updates.
    let mut block = vec![0u64; (hi - lo) as usize];
    ga.read_local(mpi, &mut block);
    let local_sum: u64 = block.iter().fold(0u64, |a, &b| a.wrapping_add(b));
    let total = mpi.allreduce(&[local_sum], cmpi_core::ReduceOp::Sum)[0];
    let rate = if span.is_zero() {
        0.0
    } else {
        updates as f64 / span.as_secs_f64()
    };
    (rate, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpi_cluster::{DeploymentScenario, NamespaceSharing};
    use cmpi_core::{JobSpec, LocalityPolicy};

    fn spec() -> JobSpec {
        JobSpec::new(DeploymentScenario::containers(
            1,
            2,
            2,
            NamespaceSharing::default(),
        ))
    }

    #[test]
    fn block_distribution_covers_every_index() {
        let r = spec().run(|mpi| {
            let ga = GlobalArray::<u32>::new(mpi, 103); // deliberately uneven
            let mut seen = vec![0u32; 103];
            for idx in 0..103u64 {
                let (rank, off) = ga.locate(idx);
                assert!(rank < mpi.size());
                assert_eq!(off % 4, 0);
                let (lo, hi) = ga.owned_range(rank);
                assert!(idx >= lo && idx < hi);
                seen[idx as usize] += 1;
            }
            seen.iter().all(|&c| c == 1)
        });
        assert!(r.results.iter().all(|&ok| ok));
    }

    #[test]
    fn cross_block_write_and_read() {
        let r = spec().run(|mpi| {
            let mut ga = GlobalArray::<u64>::new(mpi, 40); // 10 per rank
            if mpi.rank() == 0 {
                // Spans blocks 0..4.
                let data: Vec<u64> = (0..35).map(|i| i * 7).collect();
                ga.write(mpi, 3, &data);
                for t in 0..mpi.size() {
                    ga.flush(mpi, t);
                }
            }
            ga.sync(mpi);
            let mut out = vec![0u64; 35];
            ga.read(mpi, 3, &mut out);
            out
        });
        let expect: Vec<u64> = (0..35).map(|i| i * 7).collect();
        for v in &r.results {
            assert_eq!(v, &expect);
        }
    }

    #[test]
    fn gups_checksum_is_policy_invariant_and_opt_is_faster() {
        let run = |policy| {
            let r = spec()
                .with_policy(policy)
                .run(|mpi| gups(mpi, 1 << 10, 200, 42));
            // All ranks agree on the checksum.
            let (_, sum0) = r.results[0];
            assert!(r.results.iter().all(|&(_, s)| s == sum0));
            (r.results[0].1, r.elapsed)
        };
        let (sum_opt, t_opt) = run(LocalityPolicy::ContainerDetector);
        let (sum_def, t_def) = run(LocalityPolicy::Hostname);
        assert_eq!(sum_opt, sum_def, "updates must be policy-independent");
        assert!(t_opt < t_def, "opt {t_opt} must beat def {t_def}");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_access_panics() {
        spec().run(|mpi| {
            let ga = GlobalArray::<u8>::new(mpi, 10);
            ga.locate(10);
        });
    }
}
