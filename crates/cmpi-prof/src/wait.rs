//! Wait-state decomposition: *why* a rank was blocked inside MPI.
//!
//! mpiP and Scalasca distinguish time a rank spends blocked because the
//! partner was not ready from time the data genuinely needed to move.
//! The runtime classifies every blocking interval into:
//!
//! * **late sender** — a receive was posted before the matching message
//!   arrived (pt2pt receives);
//! * **late receiver** — a send was held up by the receiver: rendezvous
//!   CTS not yet back, or the bounded SHM eager queue full;
//! * **arrival skew** — the same partner-not-ready time inside a
//!   collective, where it measures how unevenly ranks arrived;
//! * **transfer** — the remainder: data movement and protocol processing
//!   the channel actually required.
//!
//! The four components sum to the blocked time by construction; the
//! proptests assert it stays that way.

use cmpi_cluster::SimTime;

use crate::json::Json;

/// The call classes wait states are attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitClass {
    /// User two-sided traffic (`ctx == CTX_WORLD`).
    Pt2pt,
    /// Collective-internal traffic (any other context).
    Collective,
    /// One-sided completions (flush / fence / synchronous get).
    OneSided,
}

impl WaitClass {
    /// All classes in display order.
    pub const ALL: [WaitClass; 3] = [WaitClass::Pt2pt, WaitClass::Collective, WaitClass::OneSided];

    /// Dense index.
    pub fn index(self) -> usize {
        match self {
            WaitClass::Pt2pt => 0,
            WaitClass::Collective => 1,
            WaitClass::OneSided => 2,
        }
    }

    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            WaitClass::Pt2pt => "pt2pt",
            WaitClass::Collective => "collective",
            WaitClass::OneSided => "one-sided",
        }
    }
}

/// Accumulated wait-state components for one (rank, class).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitBreakdown {
    /// Blocked because the matching message had not arrived yet.
    pub late_sender: SimTime,
    /// Blocked because the receiver had not granted progress (no CTS,
    /// or no space in the bounded eager queue).
    pub late_receiver: SimTime,
    /// Partner-not-ready time inside collectives (arrival imbalance).
    pub arrival_skew: SimTime,
    /// Remaining blocked time: actual data movement and protocol work.
    pub transfer: SimTime,
    /// Total blocked time (the four components sum to this).
    pub blocked: SimTime,
    /// Number of blocking intervals recorded.
    pub samples: u64,
}

impl WaitBreakdown {
    /// Record one blocking interval already split into components.
    pub fn record(
        &mut self,
        late_sender: SimTime,
        late_receiver: SimTime,
        arrival_skew: SimTime,
        transfer: SimTime,
    ) {
        self.late_sender += late_sender;
        self.late_receiver += late_receiver;
        self.arrival_skew += arrival_skew;
        self.transfer += transfer;
        self.blocked += late_sender + late_receiver + arrival_skew + transfer;
        self.samples += 1;
    }

    /// Sum of the four components (must equal `blocked`).
    pub fn components_total(&self) -> SimTime {
        self.late_sender + self.late_receiver + self.arrival_skew + self.transfer
    }

    /// Fieldwise sum.
    pub fn merge(&mut self, other: &WaitBreakdown) {
        self.late_sender += other.late_sender;
        self.late_receiver += other.late_receiver;
        self.arrival_skew += other.arrival_skew;
        self.transfer += other.transfer;
        self.blocked += other.blocked;
        self.samples += other.samples;
    }

    /// Transfer share of the blocked time in `[0, 1]` (0 when never
    /// blocked).
    pub fn transfer_share(&self) -> f64 {
        if self.blocked.is_zero() {
            0.0
        } else {
            self.transfer.as_ns() as f64 / self.blocked.as_ns() as f64
        }
    }

    /// JSON object (nanosecond integers).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("late_sender_ns".into(), Json::num(self.late_sender.as_ns())),
            (
                "late_receiver_ns".into(),
                Json::num(self.late_receiver.as_ns()),
            ),
            (
                "arrival_skew_ns".into(),
                Json::num(self.arrival_skew.as_ns()),
            ),
            ("transfer_ns".into(), Json::num(self.transfer.as_ns())),
            ("blocked_ns".into(), Json::num(self.blocked.as_ns())),
            ("samples".into(), Json::num(self.samples)),
        ])
    }
}

/// One rank's wait-state table: a breakdown per call class.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WaitStats {
    per: [WaitBreakdown; 3],
}

impl WaitStats {
    /// The breakdown for `class`.
    pub fn class(&self, class: WaitClass) -> &WaitBreakdown {
        &self.per[class.index()]
    }

    /// Mutable breakdown for `class`.
    pub fn class_mut(&mut self, class: WaitClass) -> &mut WaitBreakdown {
        &mut self.per[class.index()]
    }

    /// Sum over all classes.
    pub fn total(&self) -> WaitBreakdown {
        let mut out = WaitBreakdown::default();
        for b in &self.per {
            out.merge(b);
        }
        out
    }

    /// Fieldwise sum.
    pub fn merge(&mut self, other: &WaitStats) {
        for (m, o) in self.per.iter_mut().zip(other.per.iter()) {
            m.merge(o);
        }
    }

    /// JSON object keyed by class name.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            WaitClass::ALL
                .iter()
                .map(|&c| (c.name().to_string(), self.class(c).to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_always_sum_to_blocked() {
        let mut w = WaitBreakdown::default();
        w.record(
            SimTime::from_us(5),
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from_us(2),
        );
        w.record(
            SimTime::ZERO,
            SimTime::from_us(1),
            SimTime::ZERO,
            SimTime::from_us(3),
        );
        assert_eq!(w.blocked, SimTime::from_us(11));
        assert_eq!(w.components_total(), w.blocked);
        assert_eq!(w.samples, 2);
    }

    #[test]
    fn transfer_share_bounds() {
        let mut w = WaitBreakdown::default();
        assert_eq!(w.transfer_share(), 0.0);
        w.record(
            SimTime::from_us(3),
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from_us(1),
        );
        assert!((w.transfer_share() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn stats_merge_and_total() {
        let mut a = WaitStats::default();
        a.class_mut(WaitClass::Pt2pt).record(
            SimTime::from_us(1),
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::ZERO,
        );
        let mut b = WaitStats::default();
        b.class_mut(WaitClass::Collective).record(
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from_us(4),
            SimTime::from_us(2),
        );
        a.merge(&b);
        assert_eq!(a.total().blocked, SimTime::from_us(7));
        assert_eq!(
            a.class(WaitClass::Collective).arrival_skew,
            SimTime::from_us(4)
        );
        let j = a.to_json();
        assert!(j.get("collective").is_some());
    }
}
