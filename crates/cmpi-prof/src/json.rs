//! A minimal JSON document model with a serializer and a strict parser.
//!
//! The build environment vendors a marker-only `serde` (derives expand to
//! nothing and there is no `serde_json`), so the profiling subsystem
//! carries its own value type. It covers exactly what the exporters need:
//! construction of objects/arrays, compact serialization with correct
//! string escaping, and a full parser so tests can assert that every
//! emitted document round-trips.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integral values up to 2^53 serialize without a
    /// fractional part.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved (stable output for tests
    /// and diffs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an integer value.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; nothing in the profiler produces them, but
        // the emitter must still never write an invalid document.
        return f.write_str("null");
    }
    if n == n.trunc() && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unfinished escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                self.expect(b'\\', "expected low surrogate")?;
                                self.expect(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("unfinished \\u"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::num(0)),
            ("42", Json::num(42)),
            ("-7", Json::Num(-7.0)),
            ("2.5", Json::Num(2.5)),
            ("\"hi\"", Json::str("hi")),
        ] {
            assert_eq!(Json::parse(text).unwrap(), v, "{text}");
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::num(1), Json::Null])),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::str("v"))]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "quote:\" slash:\\ newline:\n tab:\t ctrl:\u{1} unicode:λ→🦀";
        let v = Json::str(tricky);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Explicit escape forms parse too, incl. a surrogate pair for 🦀.
        assert_eq!(Json::parse(r#""\/""#).unwrap(), Json::str("/"));
        assert_eq!(
            Json::parse("\"\\u00e9 \\ud83e\\udd80\"").unwrap(),
            Json::str("é 🦀")
        );
    }

    #[test]
    fn numbers_with_exponents_parse() {
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-2.5E-2").unwrap(), Json::Num(-0.025));
        assert_eq!(Json::parse("1.25e+2").unwrap(), Json::Num(125.0));
    }

    #[test]
    fn large_integers_serialize_without_fraction() {
        let n = Json::num(123_456_789_012);
        assert_eq!(n.to_string(), "123456789012");
        assert_eq!(Json::parse(&n.to_string()).unwrap(), n);
    }

    #[test]
    fn garbage_is_rejected_with_position() {
        for text in ["", "nul", "[1,", "{\"a\":}", "\"open", "1 2", "[1]]", "{,}"] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
        let e = Json::parse("[true, xyz]").unwrap_err();
        assert_eq!(e.pos, 7);
    }

    #[test]
    fn whitespace_everywhere_is_fine() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }
}
