//! Per-peer channel matrices: Table I at rank-pair granularity.
//!
//! A [`RankMatrix`] is one rank's row of the job-wide N×N traffic matrix:
//! for every peer, per-channel {ops, bytes} plus a log2 message-size
//! histogram. The runtime keeps two ledgers per rank — transmitted
//! (initiator-side, summing exactly to the rank's [`ChannelCounter`]
//! aggregates) and received (delivery-side) — so byte conservation across
//! the job is checkable, not assumed.

use cmpi_cluster::Channel;

use crate::json::Json;

/// Number of channels (indexed by [`chan_index`]).
pub const NUM_CHANNELS: usize = 3;

/// Dense channel index in [`Channel::ALL`] order.
pub fn chan_index(c: Channel) -> usize {
    match c {
        Channel::Shm => 0,
        Channel::Cma => 1,
        Channel::Hca => 2,
    }
}

/// {ops, bytes} for one (peer, channel) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChanCell {
    /// Data-bearing transfer operations.
    pub ops: u64,
    /// Payload bytes.
    pub bytes: u64,
}

impl ChanCell {
    fn add(&mut self, bytes: u64) {
        self.ops += 1;
        self.bytes += bytes;
    }

    fn merge(&mut self, other: &ChanCell) {
        self.ops += other.ops;
        self.bytes += other.bytes;
    }
}

/// Number of log2 size buckets (covers every `usize` message length).
pub const SIZE_BUCKETS: usize = 65;

/// A log2 message-size histogram: bucket `k` counts messages with
/// `size.next_power_of_two() == 2^k` (bucket 0 holds empty and 1-byte
/// messages).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SizeHistogram {
    buckets: Box<[u64; SIZE_BUCKETS]>,
}

impl Default for SizeHistogram {
    fn default() -> Self {
        SizeHistogram {
            buckets: Box::new([0; SIZE_BUCKETS]),
        }
    }
}

/// The bucket a message of `size` bytes lands in.
pub fn size_bucket(size: usize) -> usize {
    if size <= 1 {
        0
    } else {
        (usize::BITS - (size - 1).leading_zeros()) as usize
    }
}

impl SizeHistogram {
    /// Count one message of `size` bytes.
    pub fn record(&mut self, size: usize) {
        self.buckets[size_bucket(size)] += 1;
    }

    /// Count in bucket `k`.
    pub fn bucket(&self, k: usize) -> u64 {
        self.buckets[k]
    }

    /// Total messages counted.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fieldwise sum.
    pub fn merge(&mut self, other: &SizeHistogram) {
        for (m, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *m += o;
        }
    }

    /// Non-empty buckets as `(k, count)` pairs.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (k, c))
    }
}

/// One (rank, peer) cell: traffic per channel plus the size histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeerCell {
    /// Per-channel counters, indexed by [`chan_index`].
    pub chan: [ChanCell; NUM_CHANNELS],
    /// Message sizes, log2-bucketed.
    pub hist: SizeHistogram,
}

impl PeerCell {
    /// Sum of bytes over all channels.
    pub fn bytes(&self) -> u64 {
        self.chan.iter().map(|c| c.bytes).sum()
    }

    /// Sum of ops over all channels.
    pub fn ops(&self) -> u64 {
        self.chan.iter().map(|c| c.ops).sum()
    }
}

/// One rank's row of the job traffic matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankMatrix {
    cells: Vec<PeerCell>,
}

impl RankMatrix {
    /// An all-zero row for a job of `n` ranks.
    pub fn new(n: usize) -> Self {
        RankMatrix {
            cells: (0..n).map(|_| PeerCell::default()).collect(),
        }
    }

    /// Number of peers (== number of ranks).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` for a zero-rank job.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Count one transfer of `bytes` to/from `peer` on `channel`.
    pub fn record(&mut self, peer: usize, channel: Channel, bytes: usize) {
        let cell = &mut self.cells[peer];
        cell.chan[chan_index(channel)].add(bytes as u64);
        cell.hist.record(bytes);
    }

    /// The cell for `peer`.
    pub fn cell(&self, peer: usize) -> &PeerCell {
        &self.cells[peer]
    }

    /// Row sums per channel — must equal the rank's `ChannelCounter`
    /// aggregates for the transmitted ledger (the proptest invariant).
    pub fn channel_totals(&self) -> [ChanCell; NUM_CHANNELS] {
        let mut out = [ChanCell::default(); NUM_CHANNELS];
        for cell in &self.cells {
            for (t, c) in out.iter_mut().zip(cell.chan.iter()) {
                t.merge(c);
            }
        }
        out
    }

    /// Fold one cell's counters into this row's `peer` slot (used when a
    /// one-sided origin recorded traffic on the target's behalf).
    pub fn absorb_cell(&mut self, peer: usize, cell: &PeerCell) {
        let mine = &mut self.cells[peer];
        for (m, o) in mine.chan.iter_mut().zip(cell.chan.iter()) {
            m.merge(o);
        }
        mine.hist.merge(&cell.hist);
    }

    /// Fieldwise sum of another row into this one.
    pub fn merge(&mut self, other: &RankMatrix) {
        assert_eq!(self.len(), other.len(), "matrix dimension mismatch");
        for (mine, theirs) in self.cells.iter_mut().zip(other.cells.iter()) {
            for (m, o) in mine.chan.iter_mut().zip(theirs.chan.iter()) {
                m.merge(o);
            }
            mine.hist.merge(&theirs.hist);
        }
    }

    /// JSON row: one object per peer with traffic, omitting empty cells.
    pub fn to_json(&self) -> Json {
        let peers = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ops() > 0)
            .map(|(peer, c)| {
                let mut fields = vec![("peer".to_string(), Json::num(peer as u64))];
                for ch in Channel::ALL {
                    let cc = c.chan[chan_index(ch)];
                    if cc.ops > 0 {
                        fields.push((
                            ch.name().to_lowercase(),
                            Json::Obj(vec![
                                ("ops".to_string(), Json::num(cc.ops)),
                                ("bytes".to_string(), Json::num(cc.bytes)),
                            ]),
                        ));
                    }
                }
                let hist = c
                    .hist
                    .nonzero()
                    .map(|(k, n)| Json::Arr(vec![Json::num(k as u64), Json::num(n)]))
                    .collect();
                fields.push(("size_log2".to_string(), Json::Arr(hist)));
                Json::Obj(fields)
            })
            .collect();
        Json::Arr(peers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_buckets_are_log2() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 0);
        assert_eq!(size_bucket(2), 1);
        assert_eq!(size_bucket(3), 2);
        assert_eq!(size_bucket(4), 2);
        assert_eq!(size_bucket(5), 3);
        assert_eq!(size_bucket(1024), 10);
        assert_eq!(size_bucket(1025), 11);
        assert_eq!(size_bucket(usize::MAX), SIZE_BUCKETS - 1);
    }

    #[test]
    fn row_sums_match_per_peer_records() {
        let mut m = RankMatrix::new(4);
        m.record(1, Channel::Shm, 100);
        m.record(1, Channel::Shm, 50);
        m.record(2, Channel::Hca, 7);
        m.record(3, Channel::Cma, 4096);
        let totals = m.channel_totals();
        assert_eq!(
            totals[chan_index(Channel::Shm)],
            ChanCell { ops: 2, bytes: 150 }
        );
        assert_eq!(
            totals[chan_index(Channel::Cma)],
            ChanCell {
                ops: 1,
                bytes: 4096
            }
        );
        assert_eq!(
            totals[chan_index(Channel::Hca)],
            ChanCell { ops: 1, bytes: 7 }
        );
        assert_eq!(m.cell(1).hist.total(), 2);
        assert_eq!(m.cell(0).ops(), 0);
    }

    #[test]
    fn merge_is_fieldwise() {
        let mut a = RankMatrix::new(2);
        a.record(1, Channel::Shm, 10);
        let mut b = RankMatrix::new(2);
        b.record(1, Channel::Shm, 30);
        b.record(0, Channel::Hca, 5);
        a.merge(&b);
        assert_eq!(a.cell(1).chan[0], ChanCell { ops: 2, bytes: 40 });
        assert_eq!(a.cell(0).chan[2], ChanCell { ops: 1, bytes: 5 });
        assert_eq!(a.cell(1).hist.total(), 2);
    }

    #[test]
    fn json_row_lists_only_active_peers() {
        let mut m = RankMatrix::new(3);
        m.record(2, Channel::Cma, 64 * 1024);
        let j = m.to_json();
        let rows = j.as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("peer").unwrap().as_f64(), Some(2.0));
        assert!(rows[0].get("cma").is_some());
        assert!(rows[0].get("shm").is_none());
    }
}
