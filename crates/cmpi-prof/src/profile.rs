//! The per-rank collector and the job-wide profile report.
//!
//! Each rank carries a [`ProfCollector`] while profiling is on; at
//! finalize the runtime assembles the collectors — plus substrate
//! counters from the SHM queues and the fabric endpoints — into a
//! [`JobProfile`], the artifact behind `figures --profile`, the OSU
//! `--profile` flag, and the integration tests.

use cmpi_cluster::{Channel, SimTime};

use crate::json::Json;
use crate::matrix::{chan_index, RankMatrix};
use crate::wait::{WaitClass, WaitStats};

/// One rank's in-flight profiling state.
#[derive(Clone, Debug)]
pub struct ProfCollector {
    /// Traffic this rank initiated, by destination (row sums equal the
    /// rank's `ChannelCounter` aggregates).
    pub tx: RankMatrix,
    /// Traffic delivered to this rank, by source.
    pub rx: RankMatrix,
    /// One-sided traffic this rank placed *into* a target's window, by
    /// target. The target executes no code for a put, so the origin
    /// records the delivery on its behalf; assembly folds these into the
    /// target's rx row.
    pub rx_remote: RankMatrix,
    /// Wait-state decomposition per call class.
    pub waits: WaitStats,
}

impl ProfCollector {
    /// An empty collector for a job of `n` ranks.
    pub fn new(n: usize) -> Self {
        ProfCollector {
            tx: RankMatrix::new(n),
            rx: RankMatrix::new(n),
            rx_remote: RankMatrix::new(n),
            waits: WaitStats::default(),
        }
    }
}

/// Job-wide SHM eager-queue pressure counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueuePressure {
    /// Pair queues instantiated.
    pub queues: u64,
    /// Successful space claims across all queues (the stall-ratio
    /// denominator the health evaluator consumes).
    pub acquires: u64,
    /// Acquires that found the queue full and had to wait for a
    /// receiver-side drain (each one is backpressure the Fig. 7(b)
    /// sweep measures).
    pub stalled_acquires: u64,
    /// Highest bytes-in-flight observed on any one queue.
    pub max_in_flight: u64,
    /// Packets pushed into rank mailboxes (lock-free MPSC path).
    pub mailbox_pushes: u64,
    /// Times a rank parked on its mailbox condvar (empty-queue idle).
    pub mailbox_parks: u64,
    /// Cross-thread wakeups delivered to parked ranks.
    pub mailbox_wakes: u64,
}

/// Per-rank fabric endpoint counters (posted vs. delivered).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricCounters {
    /// Two-sided messages posted.
    pub sends: u64,
    /// Two-sided bytes posted.
    pub send_bytes: u64,
    /// Messages drained by the receiver's progress engine.
    pub recvs: u64,
    /// Bytes drained.
    pub recv_bytes: u64,
    /// RDMA operations initiated.
    pub rdma_ops: u64,
    /// RDMA bytes moved.
    pub rdma_bytes: u64,
}

/// The assembled job profile.
#[derive(Clone, Debug)]
pub struct JobProfile {
    /// Per-rank transmitted-traffic rows.
    pub tx: Vec<RankMatrix>,
    /// Per-rank received-traffic rows (one-sided on-behalf records
    /// already folded in).
    pub rx: Vec<RankMatrix>,
    /// Per-rank wait-state tables.
    pub waits: Vec<WaitStats>,
    /// SHM eager-queue pressure.
    pub queue: QueuePressure,
    /// Per-rank fabric endpoint counters.
    pub fabric: Vec<FabricCounters>,
}

impl JobProfile {
    /// Fold per-rank collectors and substrate counters into a profile.
    pub fn assemble(
        collectors: Vec<ProfCollector>,
        queue: QueuePressure,
        fabric: Vec<FabricCounters>,
    ) -> JobProfile {
        let n = collectors.len();
        let mut tx = Vec::with_capacity(n);
        let mut rx = Vec::with_capacity(n);
        let mut waits = Vec::with_capacity(n);
        for c in &collectors {
            tx.push(c.tx.clone());
            rx.push(c.rx.clone());
            waits.push(c.waits.clone());
        }
        // Fold origin-recorded one-sided deliveries into the target rows:
        // rx[target][origin] += collectors[origin].rx_remote[target].
        for (origin, c) in collectors.iter().enumerate() {
            for (target, row) in rx.iter_mut().enumerate() {
                let cell = c.rx_remote.cell(target);
                if cell.ops() > 0 {
                    row.absorb_cell(origin, cell);
                }
            }
        }
        JobProfile {
            tx,
            rx,
            waits,
            queue,
            fabric,
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.tx.len()
    }

    /// Bytes rank `from` initiated towards `to`, all channels.
    pub fn pair_bytes(&self, from: usize, to: usize) -> u64 {
        self.tx[from].cell(to).bytes()
    }

    /// Bytes rank `from` initiated towards `to` on one channel.
    pub fn pair_channel_bytes(&self, from: usize, to: usize, ch: Channel) -> u64 {
        self.tx[from].cell(to).chan[chan_index(ch)].bytes
    }

    /// Largest conservation violation over unordered pairs:
    /// `|tx(i,j)+tx(j,i) − rx(i,j)−rx(j,i)|` in bytes. Zero means every
    /// byte any rank initiated was delivered exactly once — the
    /// "matrix symmetric in bytes" check the CI smoke stage runs.
    pub fn conservation_error(&self) -> u64 {
        let n = self.num_ranks();
        let mut worst = 0u64;
        for i in 0..n {
            for j in i..n {
                let sent = self.tx[i].cell(j).bytes() + self.tx[j].cell(i).bytes();
                let recvd = self.rx[i].cell(j).bytes() + self.rx[j].cell(i).bytes();
                worst = worst.max(sent.abs_diff(recvd));
            }
        }
        worst
    }

    /// Strict directional conservation: `tx[i][j] == rx[j][i]` in bytes
    /// for every ordered pair. Holds for two-sided-only workloads; a
    /// one-sided *get* records delivery at the origin, so mixed workloads
    /// should check [`JobProfile::conservation_error`] instead.
    pub fn directionally_conserved(&self) -> bool {
        let n = self.num_ranks();
        (0..n).all(|i| (0..n).all(|j| self.tx[i].cell(j).bytes() == self.rx[j].cell(i).bytes()))
    }

    /// Job-wide wait breakdown for one class (summed over ranks).
    pub fn wait_total(&self, class: WaitClass) -> crate::wait::WaitBreakdown {
        let mut out = crate::wait::WaitBreakdown::default();
        for w in &self.waits {
            out.merge(w.class(class));
        }
        out
    }

    /// Job-wide transfer time summed over ranks and classes.
    pub fn transfer_time(&self) -> SimTime {
        let mut out = SimTime::ZERO;
        for w in &self.waits {
            out += w.total().transfer;
        }
        out
    }

    /// Job-wide blocked time summed over ranks and classes.
    pub fn blocked_time(&self) -> SimTime {
        let mut out = SimTime::ZERO;
        for w in &self.waits {
            out += w.total().blocked;
        }
        out
    }

    /// Human-readable report: the per-peer channel matrix (peers with
    /// traffic only), the wait-state table, and substrate pressure.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let n = self.num_ranks();
        let mut out = String::new();
        let _ = writeln!(out, "--- job profile ({n} ranks) ---");
        let _ = writeln!(
            out,
            "{:>5} {:>5}  {:>12} {:>14}  {:>12} {:>14}  {:>12} {:>14}",
            "src", "dst", "SHM ops", "SHM bytes", "CMA ops", "CMA bytes", "HCA ops", "HCA bytes"
        );
        for i in 0..n {
            for j in 0..n {
                let c = self.tx[i].cell(j);
                if c.ops() == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{:>5} {:>5}  {:>12} {:>14}  {:>12} {:>14}  {:>12} {:>14}",
                    i,
                    j,
                    c.chan[0].ops,
                    c.chan[0].bytes,
                    c.chan[1].ops,
                    c.chan[1].bytes,
                    c.chan[2].ops,
                    c.chan[2].bytes
                );
            }
        }
        let _ = writeln!(out, "wait states (job-wide):");
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>14} {:>14} {:>14} {:>14}",
            "class", "late-sender", "late-recv", "arrival-skew", "transfer", "blocked"
        );
        for class in WaitClass::ALL {
            let w = self.wait_total(class);
            if w.samples == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<12} {:>14} {:>14} {:>14} {:>14} {:>14}",
                class.name(),
                format!("{}", w.late_sender),
                format!("{}", w.late_receiver),
                format!("{}", w.arrival_skew),
                format!("{}", w.transfer),
                format!("{}", w.blocked)
            );
        }
        let _ = writeln!(
            out,
            "shm queues: {} created, {} stalled acquires, {} B max in flight",
            self.queue.queues, self.queue.stalled_acquires, self.queue.max_in_flight
        );
        let _ = writeln!(
            out,
            "mailboxes: {} pushes, {} parks, {} wakes",
            self.queue.mailbox_pushes, self.queue.mailbox_parks, self.queue.mailbox_wakes
        );
        let posted: u64 = self.fabric.iter().map(|f| f.sends).sum();
        let drained: u64 = self.fabric.iter().map(|f| f.recvs).sum();
        let rdma: u64 = self.fabric.iter().map(|f| f.rdma_ops).sum();
        let _ = writeln!(
            out,
            "fabric: {posted} msgs posted, {drained} drained, {rdma} RDMA ops"
        );
        out
    }

    /// Machine-readable profile (round-trips through [`Json::parse`]).
    pub fn to_json(&self) -> Json {
        let n = self.num_ranks();
        let ranks = (0..n)
            .map(|r| {
                Json::Obj(vec![
                    ("rank".into(), Json::num(r as u64)),
                    ("tx".into(), self.tx[r].to_json()),
                    ("rx".into(), self.rx[r].to_json()),
                    ("waits".into(), self.waits[r].to_json()),
                    (
                        "fabric".into(),
                        Json::Obj(vec![
                            ("sends".into(), Json::num(self.fabric[r].sends)),
                            ("send_bytes".into(), Json::num(self.fabric[r].send_bytes)),
                            ("recvs".into(), Json::num(self.fabric[r].recvs)),
                            ("recv_bytes".into(), Json::num(self.fabric[r].recv_bytes)),
                            ("rdma_ops".into(), Json::num(self.fabric[r].rdma_ops)),
                            ("rdma_bytes".into(), Json::num(self.fabric[r].rdma_bytes)),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("num_ranks".into(), Json::num(n as u64)),
            (
                "queue".into(),
                Json::Obj(vec![
                    ("queues".into(), Json::num(self.queue.queues)),
                    (
                        "stalled_acquires".into(),
                        Json::num(self.queue.stalled_acquires),
                    ),
                    ("max_in_flight".into(), Json::num(self.queue.max_in_flight)),
                    (
                        "mailbox_pushes".into(),
                        Json::num(self.queue.mailbox_pushes),
                    ),
                    ("mailbox_parks".into(), Json::num(self.queue.mailbox_parks)),
                    ("mailbox_wakes".into(), Json::num(self.queue.mailbox_wakes)),
                ]),
            ),
            ("ranks".into(), Json::Arr(ranks)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rank_profile() -> JobProfile {
        let mut c0 = ProfCollector::new(2);
        let mut c1 = ProfCollector::new(2);
        c0.tx.record(1, Channel::Shm, 100);
        c1.rx.record(0, Channel::Shm, 100);
        c1.tx.record(0, Channel::Hca, 40);
        c0.rx.record(1, Channel::Hca, 40);
        c0.waits.class_mut(WaitClass::Pt2pt).record(
            SimTime::from_us(5),
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from_us(1),
        );
        JobProfile::assemble(
            vec![c0, c1],
            QueuePressure {
                queues: 2,
                stalled_acquires: 1,
                max_in_flight: 8192,
                ..QueuePressure::default()
            },
            vec![FabricCounters::default(); 2],
        )
    }

    #[test]
    fn conservation_holds_for_balanced_ledgers() {
        let p = two_rank_profile();
        assert_eq!(p.conservation_error(), 0);
        assert!(p.directionally_conserved());
        assert_eq!(p.pair_bytes(0, 1), 100);
        assert_eq!(p.pair_channel_bytes(1, 0, Channel::Hca), 40);
    }

    #[test]
    fn conservation_detects_a_lost_byte() {
        let mut c0 = ProfCollector::new(2);
        c0.tx.record(1, Channel::Shm, 100);
        // Receiver never recorded it.
        let p = JobProfile::assemble(
            vec![c0, ProfCollector::new(2)],
            QueuePressure::default(),
            vec![FabricCounters::default(); 2],
        );
        assert_eq!(p.conservation_error(), 100);
        assert!(!p.directionally_conserved());
    }

    #[test]
    fn onesided_put_is_folded_into_target_rx() {
        let mut c0 = ProfCollector::new(2);
        c0.tx.record(1, Channel::Cma, 64);
        c0.rx_remote.record(1, Channel::Cma, 64);
        let p = JobProfile::assemble(
            vec![c0, ProfCollector::new(2)],
            QueuePressure::default(),
            vec![FabricCounters::default(); 2],
        );
        assert_eq!(p.rx[1].cell(0).bytes(), 64);
        assert_eq!(p.conservation_error(), 0);
        assert!(p.directionally_conserved());
    }

    #[test]
    fn report_and_json_round_trip() {
        let p = two_rank_profile();
        let text = p.report();
        assert!(text.contains("2 ranks"));
        assert!(text.contains("late-sender"));
        let parsed = Json::parse(&p.to_json().to_string()).expect("profile JSON must parse");
        assert_eq!(parsed.get("num_ranks").unwrap().as_f64(), Some(2.0));
        assert_eq!(parsed.get("ranks").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn wait_totals_sum_over_ranks() {
        let p = two_rank_profile();
        let w = p.wait_total(WaitClass::Pt2pt);
        assert_eq!(w.blocked, SimTime::from_us(6));
        assert_eq!(w.components_total(), w.blocked);
        assert_eq!(p.transfer_time(), SimTime::from_us(1));
        assert_eq!(p.blocked_time(), SimTime::from_us(6));
    }
}
