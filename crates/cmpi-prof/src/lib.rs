//! # cmpi-prof — causal profiling for container-mpi
//!
//! The observability layer behind the paper's bottleneck analysis
//! (Section III): where Table I counts per-channel transfers job-wide,
//! this crate answers *which rank pairs* ride which channel, *why* a
//! rank was blocked (late sender vs. genuine transfer time), and with
//! what message-size distribution — the evidence needed to attribute a
//! slowdown to HCA-loopback misrouting rather than to the application.
//!
//! Three pieces:
//!
//! * [`Json`] — a self-contained JSON model (the vendored `serde` is
//!   marker-only), with a serializer and a strict parser so every
//!   exported document can be round-trip-checked;
//! * [`RankMatrix`] / [`SizeHistogram`] — per-peer, per-channel traffic
//!   ledgers with log2 size buckets;
//! * [`WaitStats`] / [`JobProfile`] — mpiP-style wait-state
//!   decomposition and the assembled job report.
//!
//! The crate deliberately depends only on `cmpi-cluster` (for
//! [`cmpi_cluster::Channel`] and `SimTime`); `cmpi-core` feeds it.

#![forbid(unsafe_code)]
pub mod json;
pub mod matrix;
pub mod profile;
pub mod wait;

pub use json::{Json, JsonError};
pub use matrix::{
    chan_index, size_bucket, ChanCell, PeerCell, RankMatrix, SizeHistogram, SIZE_BUCKETS,
};
pub use profile::{FabricCounters, JobProfile, ProfCollector, QueuePressure};
pub use wait::{WaitBreakdown, WaitClass, WaitStats};
