//! Mechanical repo lint for the lock-free hot path (the `cmpi-lint`
//! binary drives this from `scripts/check.sh`).
//!
//! Rules:
//!
//! 1. **safety** — every `unsafe` token in code must be preceded (within
//!    [`SAFETY_WINDOW`] lines, or on the same line) by a `// SAFETY:`
//!    comment stating the invariant that makes it sound.
//! 2. **relaxed** — every `Ordering::Relaxed` outside the whitelist
//!    ([`RELAXED_WHITELIST`]) must carry a `// relaxed-ok:` justification
//!    within [`RELAXED_WINDOW`] lines. Relaxed is correct only for
//!    monotonic counters feeding reports, never for control flow.
//! 3. **hot-unwrap** — modules on the hot path ([`HOT_PATH_MODULES`])
//!    may not call `.unwrap()` / `.expect(` outside their test modules:
//!    a poisoned packet must surface as an `MpiError`, not a panic in
//!    the progress engine.
//! 4. **tag-width** — the collective tag packing in `collectives.rs`
//!    must keep every op id inside the high bits left over above
//!    `TAG_ROUND_BITS`, and `packet.rs` wire discriminants must stay
//!    distinct, non-zero byte-sized values. `TAG_ROUND_BITS` may be
//!    defined in exactly one file (single width authority).
//! 5. **error-display** — every `MpiError` variant must appear in
//!    `error.rs`'s exhaustive `display_covers_every_variant` test, so a
//!    new error class cannot ship without a rendering check. (The test's
//!    own match is wildcard-free and catches this at compile time; the
//!    lint additionally catches a variant missing from the *value list*
//!    the test iterates, which the compiler cannot see.)
//!
//! Test modules (`#[cfg(test)] mod …` tails) are exempt from rules 2–3;
//! rule 1 applies everywhere.
//!
//! Comment/literal discrimination is delegated to the shared lexer in
//! [`crate::strip`] (also the front end of [`crate::analyze`]), so
//! nested block comments and raw strings spanning macro invocations are
//! handled exactly rather than line-locally.

use crate::strip;

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit.
pub const SAFETY_WINDOW: usize = 10;

/// How many lines above an `Ordering::Relaxed` a `// relaxed-ok:`
/// justification may sit.
pub const RELAXED_WINDOW: usize = 4;

/// Modules where `Ordering::Relaxed` needs no justification: the model
/// checker's own plumbing (it *implements* the memory model rather than
/// relying on it).
pub const RELAXED_WHITELIST: &[&str] = &["crates/cmpi-model/src/"];

/// Hot-path modules where `unwrap()/expect()` is banned outside tests.
pub const HOT_PATH_MODULES: &[&str] = &[
    "crates/cmpi-core/src/mailbox.rs",
    "crates/cmpi-core/src/matching.rs",
    "crates/cmpi-core/src/packet.rs",
    "crates/cmpi-core/src/pt2pt.rs",
    "crates/cmpi-core/src/channel.rs",
    "crates/cmpi-shmem/src/queue.rs",
    "crates/cmpi-shmem/src/segment.rs",
    "crates/cmpi-fabric/src/endpoint.rs",
];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Does `code` contain `needle` as a standalone word?
fn has_word(code: &str, needle: &str) -> bool {
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let after = at + needle.len();
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// Index of the first line of the `#[cfg(test)] mod …` tail, if any;
/// lines at or after it are exempt from the hot-path and relaxed rules.
fn test_tail_start(lines: &[&str]) -> usize {
    for (i, l) in lines.iter().enumerate() {
        if l.trim() == "#[cfg(test)]" {
            // Look ahead (past attributes) for a `mod` item.
            for l2 in lines.iter().skip(i + 1).take(3) {
                let t = l2.trim_start();
                if t.starts_with("mod ") || t.starts_with("pub mod ") {
                    return i;
                }
                if !t.starts_with("#[") {
                    break;
                }
            }
        }
    }
    lines.len()
}

/// Does any of `lines[lo..=hi]` carry the marker comment?
fn window_has(lines: &[&str], hi: usize, window: usize, marker: &str) -> bool {
    let lo = hi.saturating_sub(window);
    lines[lo..=hi].iter().any(|l| l.contains(marker))
}

/// Run the per-file rules (safety, relaxed, hot-unwrap, duplicate tag
/// authority) over one source file. `relpath` uses forward slashes
/// relative to the workspace root.
pub fn lint_file(relpath: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = src.lines().collect();
    let codes = strip::code_lines(src);
    let tail = test_tail_start(&lines);
    let hot = HOT_PATH_MODULES.iter().any(|m| relpath.ends_with(m));
    let whitelisted = RELAXED_WHITELIST.iter().any(|w| relpath.contains(w));

    for (i, code) in codes.iter().enumerate() {
        if code.trim().is_empty() {
            continue;
        }
        let code = code.as_str();
        // Rule 1: SAFETY comments. Lint attributes mentioning unsafe
        // (forbid/deny) are configuration, not unsafe code.
        if has_word(code, "unsafe")
            && !code.contains("forbid")
            && !code.contains("deny")
            && !window_has(&lines, i, SAFETY_WINDOW, "SAFETY:")
        {
            out.push(Violation {
                file: relpath.to_string(),
                line: i + 1,
                rule: "safety",
                msg: "unsafe without a `// SAFETY:` comment in the preceding lines".into(),
            });
        }
        if i >= tail {
            continue;
        }
        // Rule 2: justified Relaxed orderings.
        if code.contains("Ordering::Relaxed")
            && !whitelisted
            && !window_has(&lines, i, RELAXED_WINDOW, "relaxed-ok:")
        {
            out.push(Violation {
                file: relpath.to_string(),
                line: i + 1,
                rule: "relaxed",
                msg: "Ordering::Relaxed without a `// relaxed-ok:` justification".into(),
            });
        }
        // Rule 3: no unwrap/expect on the hot path.
        if hot && (code.contains(".unwrap()") || code.contains(".expect(")) {
            out.push(Violation {
                file: relpath.to_string(),
                line: i + 1,
                rule: "hot-unwrap",
                msg: "unwrap()/expect() in a hot-path module (return an error instead)".into(),
            });
        }
        // Rule 4 (part): single tag-width authority.
        if code.contains("TAG_ROUND_BITS:") && !relpath.ends_with("collectives.rs") {
            out.push(Violation {
                file: relpath.to_string(),
                line: i + 1,
                rule: "tag-width",
                msg: "TAG_ROUND_BITS may only be defined in collectives.rs".into(),
            });
        }
    }
    out
}

/// Parse `[pub] const NAME: u32 = N;` from an already comment-stripped
/// code line.
fn parse_const_u32(code: &str, name_prefix: &str) -> Option<(String, u32)> {
    let t = code.trim_start();
    let t = t.strip_prefix("pub ").unwrap_or(t);
    let t = t.strip_prefix("const ")?;
    let (name, rest) = t.split_once(':')?;
    let name = name.trim();
    if !name.starts_with(name_prefix) {
        return None;
    }
    let (_, val) = rest.split_once('=')?;
    let val = val.trim().trim_end_matches(';').trim();
    val.parse().ok().map(|v| (name.to_string(), v))
}

/// Rule 4: verify the collective tag field widths and packet wire
/// discriminants against their debug-asserted bounds.
pub fn lint_tag_widths(collectives_src: &str, packet_src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let coll_file = "crates/cmpi-core/src/collectives.rs";
    let pkt_file = "crates/cmpi-core/src/packet.rs";

    let coll_lines = strip::code_lines(collectives_src);
    let pkt_lines = strip::code_lines(packet_src);

    let mut round_bits: Option<(usize, u32)> = None;
    for (i, l) in coll_lines.iter().enumerate() {
        if let Some((name, v)) = parse_const_u32(l, "TAG_ROUND_BITS") {
            if name == "TAG_ROUND_BITS" {
                round_bits = Some((i + 1, v));
            }
        }
    }
    let Some((bits_line, bits)) = round_bits else {
        out.push(Violation {
            file: coll_file.to_string(),
            line: 1,
            rule: "tag-width",
            msg: "TAG_ROUND_BITS definition not found".into(),
        });
        return out;
    };
    if bits == 0 || bits >= 32 {
        out.push(Violation {
            file: coll_file.to_string(),
            line: bits_line,
            rule: "tag-width",
            msg: format!("TAG_ROUND_BITS = {bits} leaves no room for the op id field"),
        });
        return out;
    }
    let op_limit: u64 = 1 << (32 - bits);

    // Walk the `mod op { … }` block.
    let mut in_op = false;
    let mut seen: Vec<(String, u32, usize)> = Vec::new();
    for (i, code) in coll_lines.iter().enumerate() {
        if code.trim_start().starts_with("mod op") {
            in_op = true;
            continue;
        }
        if in_op {
            if code.trim() == "}" {
                break;
            }
            if let Some((name, v)) = parse_const_u32(code, "") {
                if v == 0 {
                    out.push(Violation {
                        file: coll_file.to_string(),
                        line: i + 1,
                        rule: "tag-width",
                        msg: format!("op id {name} = 0 collides with the reserved zero tag"),
                    });
                }
                if u64::from(v) >= op_limit {
                    out.push(Violation {
                        file: coll_file.to_string(),
                        line: i + 1,
                        rule: "tag-width",
                        msg: format!(
                            "op id {name} = {v} does not fit the {} high bits above \
                             TAG_ROUND_BITS = {bits}",
                            32 - bits
                        ),
                    });
                }
                if let Some((other, _, _)) = seen.iter().find(|(_, ov, _)| *ov == v) {
                    out.push(Violation {
                        file: coll_file.to_string(),
                        line: i + 1,
                        rule: "tag-width",
                        msg: format!("op id {name} = {v} duplicates {other}"),
                    });
                }
                seen.push((name, v, i + 1));
            }
        }
    }
    if seen.is_empty() {
        out.push(Violation {
            file: coll_file.to_string(),
            line: 1,
            rule: "tag-width",
            msg: "no op ids found in `mod op`".into(),
        });
    }

    // Packet wire discriminants: distinct, non-zero, byte-sized.
    let mut kinds: Vec<(String, u32, usize)> = Vec::new();
    for (i, l) in pkt_lines.iter().enumerate() {
        if let Some((name, v)) = parse_const_u32(l, "K_") {
            if v == 0 {
                out.push(Violation {
                    file: pkt_file.to_string(),
                    line: i + 1,
                    rule: "tag-width",
                    msg: format!("wire discriminant {name} = 0 is reserved (absent imm)"),
                });
            }
            if v > u32::from(u8::MAX) {
                out.push(Violation {
                    file: pkt_file.to_string(),
                    line: i + 1,
                    rule: "tag-width",
                    msg: format!("wire discriminant {name} = {v} exceeds one byte"),
                });
            }
            if let Some((other, _, _)) = kinds.iter().find(|(_, ov, _)| *ov == v) {
                out.push(Violation {
                    file: pkt_file.to_string(),
                    line: i + 1,
                    rule: "tag-width",
                    msg: format!("wire discriminant {name} = {v} duplicates {other}"),
                });
            }
            kinds.push((name, v, i + 1));
        }
    }
    if kinds.is_empty() {
        out.push(Violation {
            file: pkt_file.to_string(),
            line: 1,
            rule: "tag-width",
            msg: "no K_* wire discriminants found".into(),
        });
    }
    out
}

/// Variant names of `pub enum MpiError`, with the 1-based line each is
/// declared on. Struct-variant fields (lowercase) and nested lines are
/// skipped by tracking brace depth inside the enum body.
fn mpi_error_variants(error_src: &str) -> Vec<(String, usize)> {
    enum_variants(error_src, "enum MpiError")
}

/// Variant names of the first enum whose header contains `needle`, with
/// the 1-based line each is declared on (shared parser for the
/// error-display and metric-ids rules).
fn enum_variants(src: &str, needle: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut depth: i32 = -1; // -1: outside the enum
    for (i, code) in strip::code_lines(src).iter().enumerate() {
        if depth < 0 {
            if code.contains(needle) && code.contains('{') {
                depth = 1;
            }
            continue;
        }
        if depth == 1 {
            let t = code.trim_start();
            let name: String = t
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                out.push((name, i + 1));
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 {
            break;
        }
    }
    out
}

/// Rule 5: every `MpiError` variant appears in the exhaustive
/// `display_covers_every_variant` test in `error.rs`.
pub fn lint_error_display(error_src: &str) -> Vec<Violation> {
    let err_file = "crates/cmpi-core/src/error.rs";
    let mut out = Vec::new();

    let variants = mpi_error_variants(error_src);
    if variants.is_empty() {
        out.push(Violation {
            file: err_file.to_string(),
            line: 1,
            rule: "error-display",
            msg: "`pub enum MpiError` not found (or has no variants)".into(),
        });
        return out;
    }

    let Some(body) = fn_body(error_src, "fn display_covers_every_variant") else {
        out.push(Violation {
            file: err_file.to_string(),
            line: 1,
            rule: "error-display",
            msg: "exhaustive Display test `display_covers_every_variant` not found".into(),
        });
        return out;
    };

    for (name, line) in &variants {
        if !has_word(&body, name) {
            out.push(Violation {
                file: err_file.to_string(),
                line: *line,
                rule: "error-display",
                msg: format!(
                    "MpiError::{name} is missing from the `display_covers_every_variant` test"
                ),
            });
        }
    }
    out
}

/// The comment-stripped body of the first fn whose header contains
/// `marker`, from the header line to its matching closing brace.
fn fn_body(src: &str, marker: &str) -> Option<String> {
    let codes = strip::code_lines(src);
    let at = codes.iter().position(|l| l.contains(marker))?;
    let mut body = String::new();
    let mut depth = 0i32;
    let mut opened = false;
    for code in codes.iter().skip(at) {
        body.push_str(code);
        body.push('\n');
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    Some(body)
}

/// Rule 6: every `MetricId` variant appears both in the DESIGN.md
/// metric inventory table (§15) and in the exhaustive
/// `exposition_covers_every_metric` test in cmpi-telemetry's
/// `metrics.rs` — the same closed loop the error-display rule keeps for
/// `MpiError`, so a metric cannot be added without being documented and
/// exposed.
pub fn lint_metric_ids(metrics_src: &str, design_md: &str) -> Vec<Violation> {
    let met_file = "crates/cmpi-telemetry/src/metrics.rs";
    let mut out = Vec::new();

    let variants = enum_variants(metrics_src, "enum MetricId");
    if variants.is_empty() {
        out.push(Violation {
            file: met_file.to_string(),
            line: 1,
            rule: "metric-ids",
            msg: "`pub enum MetricId` not found (or has no variants)".into(),
        });
        return out;
    }

    let Some(body) = fn_body(metrics_src, "fn exposition_covers_every_metric") else {
        out.push(Violation {
            file: met_file.to_string(),
            line: 1,
            rule: "metric-ids",
            msg: "exhaustive exposition test `exposition_covers_every_metric` not found".into(),
        });
        return out;
    };

    for (name, line) in &variants {
        if !has_word(&body, name) {
            out.push(Violation {
                file: met_file.to_string(),
                line: *line,
                rule: "metric-ids",
                msg: format!(
                    "MetricId::{name} is missing from the `exposition_covers_every_metric` test"
                ),
            });
        }
        if !has_word(design_md, name) {
            out.push(Violation {
                file: met_file.to_string(),
                line: *line,
                rule: "metric-ids",
                msg: format!("MetricId::{name} is missing from the DESIGN.md metric table"),
            });
        }
    }
    out
}

/// Rule 7: every analyzer rule name ([`crate::analyze::RULES`]) appears
/// in the DESIGN.md §17 rule inventory — the same closed documentation
/// loop the error-display (§14) and metric-ids (§15) rules keep, so an
/// analyzer pass cannot be added without its obligations and annotation
/// grammar being written down.
pub fn lint_rule_inventory(design_md: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for rule in crate::analyze::RULES {
        if !design_md.contains(&format!("`{rule}`")) {
            out.push(Violation {
                file: "DESIGN.md".to_string(),
                line: 1,
                rule: "rule-inventory",
                msg: format!(
                    "analyzer rule `{rule}` is missing from the DESIGN.md §17 rule inventory"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn safety_rule_flags_bare_unsafe_and_accepts_annotated() {
        let bad = "fn f(p: *mut u8) {\n    unsafe { *p = 1 };\n}\n";
        let v = lint_file("crates/x/src/a.rs", bad);
        assert_eq!(rules_of(&v), vec!["safety"]);
        assert_eq!(v[0].line, 2);

        let good = "fn f(p: *mut u8) {\n    // SAFETY: p is valid for writes by contract.\n    unsafe { *p = 1 };\n}\n";
        assert!(lint_file("crates/x/src/a.rs", good).is_empty());
    }

    #[test]
    fn safety_rule_ignores_comments_strings_and_lint_attrs() {
        let src = concat!(
            "//! talks about unsafe code in prose\n",
            "#![deny(unsafe_op_in_unsafe_fn)]\n",
            "#![forbid(unsafe_code)]\n",
            "fn f() { let _ = \"unsafe\"; } // unsafe in a string + comment\n",
        );
        assert!(lint_file("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn relaxed_rule_needs_justification_outside_whitelist() {
        let bad = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let v = lint_file("crates/cmpi-core/src/stats.rs", bad);
        assert_eq!(rules_of(&v), vec!["relaxed"]);

        let good = "fn f(c: &AtomicU64) {\n    // relaxed-ok: monotonic counter, report-only.\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(lint_file("crates/cmpi-core/src/stats.rs", good).is_empty());

        // The model crate implements the memory model; whitelisted.
        assert!(lint_file("crates/cmpi-model/src/engine.rs", bad).is_empty());
    }

    #[test]
    fn hot_unwrap_rule_only_hits_hot_modules_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            rules_of(&lint_file("crates/cmpi-core/src/matching.rs", src)),
            vec!["hot-unwrap"]
        );
        // Same code in a cold module passes.
        assert!(lint_file("crates/cmpi-core/src/figures.rs", src).is_empty());
        // And in the test tail of a hot module.
        let tested = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(lint_file("crates/cmpi-core/src/matching.rs", tested).is_empty());
    }

    #[test]
    fn tag_width_rule_accepts_current_shape_and_flags_overflow() {
        let coll_ok = "mod op {\n    pub const BARRIER: u32 = 1;\n    pub const BCAST: u32 = 2;\n}\nconst TAG_ROUND_BITS: u32 = 20;\n";
        let pkt_ok = "const K_EAGER: u32 = 1;\nconst K_RTS: u32 = 2;\n";
        assert!(lint_tag_widths(coll_ok, pkt_ok).is_empty());

        let coll_bad =
            "mod op {\n    pub const HUGE: u32 = 5000;\n}\nconst TAG_ROUND_BITS: u32 = 20;\n";
        let v = lint_tag_widths(coll_bad, pkt_ok);
        assert_eq!(rules_of(&v), vec!["tag-width"]);

        let pkt_dup = "const K_EAGER: u32 = 1;\nconst K_RTS: u32 = 1;\n";
        let v = lint_tag_widths(coll_ok, pkt_dup);
        assert_eq!(rules_of(&v), vec!["tag-width"]);
    }

    #[test]
    fn tag_width_authority_is_collectives_only() {
        let src = "const TAG_ROUND_BITS: u32 = 12;\n";
        let v = lint_file("crates/cmpi-core/src/coll_select.rs", src);
        assert_eq!(rules_of(&v), vec!["tag-width"]);
        assert!(lint_file("crates/cmpi-core/src/collectives.rs", src).is_empty());
    }

    #[test]
    fn error_display_rule_flags_untested_variants() {
        let covered = concat!(
            "pub enum MpiError {\n",
            "    Truncated { msg_len: usize, buf_len: usize },\n",
            "    Revoked,\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn display_covers_every_variant() {\n",
            "        let _ = MpiError::Truncated { msg_len: 1, buf_len: 2 };\n",
            "        let _ = MpiError::Revoked;\n",
            "    }\n",
            "}\n",
        );
        assert!(lint_error_display(covered).is_empty());

        // Drop `Revoked` from the test body: the rule pins the variant's
        // declaration line.
        let missing = covered.replace("let _ = MpiError::Revoked;\n", "");
        let v = lint_error_display(&missing);
        assert_eq!(rules_of(&v), vec!["error-display"]);
        assert_eq!(v[0].line, 3);
        assert!(v[0].msg.contains("Revoked"));

        // No enum / no test at all are violations, not silent passes.
        assert_eq!(
            rules_of(&lint_error_display("fn f() {}\n")),
            vec!["error-display"]
        );
        let no_test = "pub enum MpiError { Revoked }\n";
        let v = lint_error_display(no_test);
        assert_eq!(rules_of(&v), vec!["error-display"]);
        assert!(v[0].msg.contains("not found"));
    }

    #[test]
    fn error_display_variant_parser_skips_fields_and_nested_lines() {
        let src = concat!(
            "pub enum MpiError {\n",
            "    /// doc\n",
            "    Fabric(FabricError),\n",
            "    StaleSegment {\n",
            "        host: u32,\n",
            "        generation: u64,\n",
            "    },\n",
            "    Revoked,\n",
            "}\n",
        );
        let names: Vec<String> = mpi_error_variants(src)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["Fabric", "StaleSegment", "Revoked"]);
    }

    #[test]
    fn metric_ids_rule_requires_test_and_design_coverage() {
        let covered_src = concat!(
            "pub enum MetricId {\n",
            "    ShmOps = 0,\n",
            "    LateSenderNs = 1,\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn exposition_covers_every_metric() {\n",
            "        let _ = [MetricId::ShmOps, MetricId::LateSenderNs];\n",
            "    }\n",
            "}\n",
        );
        let design = "| `ShmOps` | counter |\n| `LateSenderNs` | counter |\n";
        assert!(lint_metric_ids(covered_src, design).is_empty());

        // A variant absent from the test body pins its declaration line.
        let untested = covered_src.replace("MetricId::LateSenderNs]", "]");
        let v = lint_metric_ids(&untested, design);
        assert_eq!(rules_of(&v), vec!["metric-ids"]);
        assert_eq!(v[0].line, 3);
        assert!(v[0].msg.contains("LateSenderNs"));
        assert!(v[0].msg.contains("exposition_covers_every_metric"));

        // A variant absent from DESIGN.md is a separate violation.
        let v = lint_metric_ids(covered_src, "| `ShmOps` |\n");
        assert_eq!(rules_of(&v), vec!["metric-ids"]);
        assert!(v[0].msg.contains("DESIGN.md"));

        // No enum / no test are violations, not silent passes.
        assert_eq!(
            rules_of(&lint_metric_ids("fn f() {}\n", design)),
            vec!["metric-ids"]
        );
        let no_test = "pub enum MetricId { ShmOps = 0 }\n";
        let v = lint_metric_ids(no_test, design);
        assert_eq!(rules_of(&v), vec!["metric-ids"]);
        assert!(v[0].msg.contains("not found"));
    }

    #[test]
    fn rule_inventory_requires_every_analyzer_rule_in_design() {
        let full = "§17 … `fiber-blocking` … `lock-order` … `atomic-pairing` …";
        assert!(lint_rule_inventory(full).is_empty());
        let partial = "§17 … `fiber-blocking` only";
        let v = lint_rule_inventory(partial);
        assert_eq!(rules_of(&v), vec!["rule-inventory", "rule-inventory"]);
        assert!(v[0].msg.contains("lock-order"));
        assert!(v[1].msg.contains("atomic-pairing"));
    }

    #[test]
    fn literal_stripping_handles_quotes_chars_and_raw_strings() {
        for src in [
            "fn f() { let s = \"unsafe {\"; }\n",
            "fn f() { let c = '\"'; let s = \"unsafe\"; }\n",
            "fn f() { panic!(\"unsafe\") }\n",
            "fn f() { let s = r\"unsafe {\"; }\n",
            "fn f() { let s = r#\"a \"quoted\" unsafe b\"#; }\n",
        ] {
            assert!(lint_file("crates/x/src/a.rs", src).is_empty(), "{src}");
        }
        assert!(has_word("unsafe impl Send for X {}", "unsafe"));
        assert!(!has_word("deny(unsafe_code)", "unsafe"));
    }

    // Regression: the seed lint's line-local stripper had two blind
    // spots — nested block comments and raw strings spanning macro
    // lines. Both now route through the shared lexer in `strip`.
    #[test]
    fn nested_block_comments_do_not_leak_tokens_into_rules() {
        let src = concat!(
            "/* outer /* inner */\n",
            "   unsafe { Ordering::Relaxed } still comment */\n",
            "fn f() {}\n",
        );
        assert!(lint_file("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn raw_string_inside_macro_does_not_leak_tokens_into_rules() {
        let src = concat!(
            "fn f() {\n",
            "    emit!(r#\"unsafe { .unwrap() }\n",
            "        Ordering::Relaxed across lines\"#);\n",
            "}\n",
        );
        assert!(lint_file("crates/cmpi-core/src/matching.rs", src).is_empty());
    }
}
