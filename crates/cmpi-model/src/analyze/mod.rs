//! `cmpi-analyze`: whole-program, syntax-aware passes over the
//! workspace.
//!
//! Built on the shared lexer in [`crate::strip`], this module extracts
//! every function in the non-`cmpi-model` workspace crates together
//! with the calls it makes, the OS-blocking primitives it touches, the
//! locks it acquires, and the atomic operations it performs
//! ([`extract`]), then runs three passes no line-based lint can express
//! ([`passes`]):
//!
//! 1. **`fiber-blocking`** — taint from the fiber entry points (the
//!    `CMPI_EXEC=tasks` engine runs every `impl Mpi` method plus
//!    `cmpi_core_fiber_boot` on a fiber); any reachable OS-blocking
//!    primitive (condvar wait, `thread::sleep`/`park`, channel recv,
//!    thread join, or a lock held across one of those) strands a worker
//!    and can deadlock the pool. Deliberate sites carry a
//!    `// fiber-ok: <why>` annotation.
//! 2. **`lock-order`** — nested lock acquisitions (directly or through
//!    calls) form edges in a global lock graph; any cycle is a deadlock
//!    candidate and fails the pass. Deliberate orderings carry
//!    `// lock-order: <why>`.
//! 3. **`atomic-pairing`** — every named atomic with Release-class
//!    stores must have an Acquire-class load somewhere in the
//!    workspace, and vice versa; one-sided orderings publish nothing.
//!    Deliberate one-sided uses carry `// pairing-ok: <why>`.
//!
//! The pass results reuse [`crate::lint::Violation`] so the `cmpi-lint`
//! binary renders and serializes both rule families uniformly. The
//! `cmpi-model` crate itself is excluded from analysis for the same
//! reason it sits on the relaxed whitelist: it *implements* the memory
//! model and the shim scheduler, so its blocking and ordering choices
//! are the baseline the rules are defined against.

pub mod extract;
pub mod passes;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use crate::lint::Violation;

pub use extract::{Decls, FnInfo, SourceFile};

/// Analyzer rule names. `lint_rule_inventory` requires each of these to
/// appear in the DESIGN.md §17 rule inventory, mirroring how §14's
/// error-display and §15's metric-id obligations are pinned.
pub const RULES: &[&str] = &["fiber-blocking", "lock-order", "atomic-pairing"];

/// How many raw source lines above a site are searched for a
/// justification annotation (`fiber-ok:` / `lock-order:` /
/// `pairing-ok:`), matching the `relaxed-ok:` window discipline.
pub const ANNOTATION_WINDOW: usize = 6;

/// Fiber entry points: taint seeds for the `fiber-blocking` pass.
#[derive(Clone, Debug, Default)]
pub struct SeedSpec {
    /// Every method of these impl types runs on a fiber.
    pub impl_types: Vec<String>,
    /// These free functions run on a fiber.
    pub fns: Vec<String>,
}

/// The real workspace's seeds: the tasks engine executes the rank main
/// through `cmpi_core_fiber_boot`, and the rank main's surface area is
/// the `Mpi` handle — every `impl Mpi` method may run on a fiber.
pub fn default_seeds() -> SeedSpec {
    SeedSpec {
        impl_types: vec!["Mpi".to_string()],
        fns: vec!["cmpi_core_fiber_boot".to_string()],
    }
}

/// A fully extracted workspace, ready for the passes.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    /// Raw (unstripped) lines per file, for annotation-window scans.
    raw_lines: Vec<Vec<String>>,
    pub fns: Vec<FnInfo>,
    pub decls: Decls,
}

impl Workspace {
    /// Build a workspace from in-memory sources (used by fixtures).
    pub fn from_sources(files: Vec<SourceFile>) -> Self {
        let mut decls = Decls::default();
        let lexed: Vec<extract::LexedFile<'_>> = files
            .iter()
            .map(|f| extract::LexedFile::new(&f.text))
            .collect();
        for (idx, lf) in lexed.iter().enumerate() {
            extract::collect_decls(idx, lf, &mut decls);
        }
        // Alias fixpoint: `let a = &x.y.z;` chains can span files and
        // appear in any order, so iterate until nothing new is learned.
        for _ in 0..4 {
            let mut changed = false;
            for lf in &lexed {
                changed |= extract::collect_aliases(lf, &mut decls);
            }
            if !changed {
                break;
            }
        }
        let mut fns = Vec::new();
        for (idx, lf) in lexed.iter().enumerate() {
            fns.extend(extract::extract_fns(idx, lf, &decls));
        }
        let raw_lines = files
            .iter()
            .map(|f| f.text.lines().map(str::to_string).collect())
            .collect();
        Workspace {
            files,
            raw_lines,
            fns,
            decls,
        }
    }

    /// Load every `.rs` file under `crates/*/src` (excluding
    /// `cmpi-model` itself) plus the root `src/`, rooted at `root`.
    pub fn load_root(root: &Path) -> io::Result<Self> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for dir in crate_dirs {
                if dir.file_name().is_some_and(|n| n == "cmpi-model") {
                    continue;
                }
                collect_rs(&dir.join("src"), root, &mut files)?;
            }
        }
        collect_rs(&root.join("src"), root, &mut files)?;
        Ok(Self::from_sources(files))
    }

    /// Run all three passes and return findings sorted by
    /// (file, line, rule).
    pub fn analyze(&self, seeds: &SeedSpec) -> Vec<Violation> {
        let mut out = Vec::new();
        out.extend(passes::fiber_blocking(self, seeds));
        out.extend(passes::lock_order(self).0);
        out.extend(passes::atomic_pairing(self));
        out.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
        out
    }

    /// Is `marker` present within [`ANNOTATION_WINDOW`] raw lines at or
    /// above 1-based `line` in file `file_idx`?
    pub fn annotated(&self, file_idx: usize, line: usize, marker: &str) -> bool {
        let lines = &self.raw_lines[file_idx];
        let hi = line.min(lines.len());
        let lo = hi.saturating_sub(ANNOTATION_WINDOW + 1);
        lines[lo..hi].iter().any(|l| l.contains(marker))
    }

    pub fn path(&self, file_idx: usize) -> &str {
        &self.files[file_idx].path
    }

    /// All distinct lock names acquired anywhere (for diagnostics).
    pub fn lock_names(&self) -> BTreeSet<&str> {
        self.fns
            .iter()
            .flat_map(|f| f.locks.iter())
            .map(|l| l.lock.as_str())
            .collect()
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                path: rel,
                text: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}
