//! The three whole-program passes over an extracted [`Workspace`].
//!
//! Call resolution is name-based and conservative: an uppercase path
//! qualifier (`Endpoint::new`) resolves against impl types; method and
//! plain calls resolve to *every* workspace function with that name.
//! Over-linking is the safe direction for both taint and lock
//! propagation — a false edge produces a finding a human can justify
//! with an annotation, a missed edge produces silence where a deadlock
//! hides.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use super::extract::{Call, FnInfo};
use super::{SeedSpec, Workspace};
use crate::lint::Violation;

/// Method names that, on an *untyped* receiver, are overwhelmingly std
/// container / iterator / slice operations; the name-based fallback
/// skips them so a `Vec` guard's `.push()` never links to a workspace
/// `push`. (Typed receivers, `self.`, and `Type::name` calls resolve
/// before this list is consulted.)
const STD_CONTAINER_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "any",
    "all",
    "find",
    "filter",
    "map",
    "for_each",
    "contains",
    "contains_key",
    "entry",
    "drain",
    "take",
    "extend",
    "collect",
    "resize",
    "resize_with",
    "truncate",
    "retain",
    "sort",
    "sort_by",
    "split_off",
    "first",
    "last",
    "keys",
    "values",
    "position",
    "count",
    "chain",
    "zip",
    "rev",
    "fold",
    "flat_map",
    "cloned",
    "copied",
    "enumerate",
];

/// Call-resolution index over the workspace functions: exact for
/// `Type::method` and typed receivers, name+arity-filtered otherwise.
struct Resolver<'w> {
    ws: &'w Workspace,
    by_name: HashMap<String, Vec<usize>>,
    by_impl: HashMap<(String, String), Vec<usize>>,
    impl_types: BTreeSet<String>,
}

impl<'w> Resolver<'w> {
    fn new(ws: &'w Workspace) -> Self {
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_impl: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut impl_types = BTreeSet::new();
        for (i, f) in ws.fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(t) = &f.impl_type {
                impl_types.insert(t.clone());
                by_impl
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
        Resolver {
            ws,
            by_name,
            by_impl,
            impl_types,
        }
    }

    fn of_impl(&self, ty: &str, name: &str) -> Vec<usize> {
        self.by_impl
            .get(&(ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// Candidate callees for a call site inside `caller`. Empty for
    /// calls that resolve outside the workspace (std, vendored deps,
    /// dead names).
    fn resolve(&self, caller: &FnInfo, call: &Call) -> Vec<usize> {
        if let Some(q) = &call.qual {
            if q.chars().next().is_some_and(char::is_uppercase) {
                // `Type::method` — exact when the type is a workspace
                // impl type, external otherwise.
                if self.impl_types.contains(q) {
                    return self.of_impl(q, &call.name);
                }
                return Vec::new();
            }
        }
        if call.method {
            let Some(recv) = &call.recv else {
                // Method on a call-result receiver (`f().is_empty()`):
                // the type is unknowable here and a name fallback links
                // common names (`len`, `is_empty`) to every workspace
                // impl — pure noise. Treat as external.
                return Vec::new();
            };
            // `self.f()` — the enclosing impl's own method set.
            if recv == "self" {
                if let Some(t) = &caller.impl_type {
                    return self.of_impl(t, &call.name);
                }
            }
            // A receiver with a known declared type (in this file —
            // typed decls are file-scoped) resolves only against impls
            // of those types — `queues.len()` on a `Box<[Mutex<…>]>`
            // must not link to every workspace `len`. A known type set
            // with no workspace match means the call is external: no
            // fallback.
            if let Some(tys) = self
                .ws
                .decls
                .typed_of(caller.file, self.ws.decls.canonical(recv))
            {
                let mut out: Vec<usize> = tys
                    .iter()
                    .filter(|t| self.impl_types.contains(*t))
                    .flat_map(|t| self.of_impl(t, &call.name))
                    .collect();
                out.sort_unstable();
                out.dedup();
                return out;
            }
        }
        // An untyped method receiver whose method is a ubiquitous std
        // container/iterator name resolves to std with near certainty —
        // `q.push(msg)` on a guard over `Vec<FabricMsg>` must not link
        // to `Mailbox::push`. Workspace methods with these names are
        // still reachable through `self.`, typed receivers, and
        // `Type::name` paths.
        if call.method && STD_CONTAINER_METHODS.contains(&call.name.as_str()) {
            return Vec::new();
        }
        // Name-based fallback, arity-filtered: a 1-argument call cannot
        // land on a 4-parameter fn (this is what keeps `drop(g)` from
        // linking to every `Drop::drop` and `.get(k)` from linking to
        // `Mpi::get`).
        self.by_name
            .get(&call.name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| self.ws.fns[i].params_n == call.args_n)
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Seed function indices for the fiber-blocking pass.
fn seed_fns(ws: &Workspace, seeds: &SeedSpec) -> Vec<usize> {
    ws.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            seeds.fns.iter().any(|s| s == &f.name)
                || f.impl_type
                    .as_ref()
                    .is_some_and(|t| seeds.impl_types.iter().any(|s| s == t))
        })
        .map(|(i, _)| i)
        .collect()
}

/// BFS over the call graph from the seeds. Returns, for each reachable
/// function, the parent edge it was first discovered through (seeds map
/// to themselves).
fn reachable(ws: &Workspace, res: &Resolver, seeds: &[usize]) -> HashMap<usize, usize> {
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in seeds {
        if parent.insert(s, s).is_none() {
            queue.push_back(s);
        }
    }
    while let Some(f) = queue.pop_front() {
        for call in &ws.fns[f].calls {
            for callee in res.resolve(&ws.fns[f], call) {
                if callee != f && parent.insert(callee, f).is_none() {
                    queue.push_back(callee);
                }
            }
        }
    }
    parent
}

/// Render the seed→fn discovery path, e.g.
/// `Mpi::barrier -> Mailbox::sleep_if_idle`.
fn path_to(ws: &Workspace, parent: &HashMap<usize, usize>, mut f: usize) -> String {
    let mut names = vec![ws.fns[f].qual_name()];
    // Parent chains are acyclic (BFS tree), but cap the walk anyway.
    for _ in 0..64 {
        let p = parent[&f];
        if p == f {
            break;
        }
        f = p;
        names.push(ws.fns[f].qual_name());
    }
    names.reverse();
    names.join(" -> ")
}

/// Pass 1: no OS-blocking primitive may be reachable from fiber
///-executed code without a `fiber-ok:` justification. Also flags a
/// blocking lock guard held *across* a blocking site in reachable code
/// (the condvar idiom `cv.wait(&mut guard)` is exempt — the wait
/// releases that guard).
pub fn fiber_blocking(ws: &Workspace, seeds: &SeedSpec) -> Vec<Violation> {
    let res = Resolver::new(ws);
    let seed_ids = seed_fns(ws, seeds);
    let parent = reachable(ws, &res, &seed_ids);
    let mut out = Vec::new();
    for &fid in parent.keys() {
        let f = &ws.fns[fid];
        for b in &f.blocks {
            if ws.annotated(f.file, b.line, "fiber-ok:") {
                continue;
            }
            out.push(Violation {
                file: ws.path(f.file).to_string(),
                line: b.line,
                rule: "fiber-blocking",
                msg: format!(
                    "OS-blocking {} `{}` reachable from fiber context ({}); \
                     route through the exec yield path or justify with `// fiber-ok:`",
                    b.kind.describe(),
                    b.what,
                    path_to(ws, &parent, fid),
                ),
            });
        }
        for l in &f.locks {
            for b in &f.blocks {
                if !(l.tok < b.tok && b.tok <= l.region_end) {
                    continue;
                }
                // `wait(&mut g)` atomically releases g — not held.
                if l.guard.as_ref().is_some_and(|g| b.args.contains(g)) {
                    continue;
                }
                if ws.annotated(f.file, l.line, "fiber-ok:") {
                    continue;
                }
                out.push(Violation {
                    file: ws.path(f.file).to_string(),
                    line: l.line,
                    rule: "fiber-blocking",
                    msg: format!(
                        "lock `{}` held across blocking {} `{}` in fiber-reachable `{}`; \
                         drop the guard first or justify with `// fiber-ok:`",
                        l.lock,
                        b.kind.describe(),
                        b.what,
                        f.qual_name(),
                    ),
                });
            }
        }
    }
    out
}

/// One edge of the global lock graph with a representative site.
#[derive(Clone, Debug)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: usize,
    pub line: usize,
    /// Function whose body witnesses the edge.
    pub witness: String,
}

/// Transitive set of locks a function may acquire, through calls.
fn trans_locks(
    ws: &Workspace,
    res: &Resolver<'_>,
    fid: usize,
    memo: &mut HashMap<usize, BTreeSet<String>>,
    visiting: &mut BTreeSet<usize>,
) -> BTreeSet<String> {
    if let Some(cached) = memo.get(&fid) {
        return cached.clone();
    }
    if !visiting.insert(fid) {
        // Recursion: the cycle's locks are accounted for at the entry
        // frame; returning the direct set keeps this terminating.
        return ws.fns[fid].locks.iter().map(|l| l.lock.clone()).collect();
    }
    let mut set: BTreeSet<String> = ws.fns[fid].locks.iter().map(|l| l.lock.clone()).collect();
    let calls: Vec<Call> = ws.fns[fid].calls.clone();
    for call in &calls {
        for callee in res.resolve(&ws.fns[fid], call) {
            set.extend(trans_locks(ws, res, callee, memo, visiting));
        }
    }
    visiting.remove(&fid);
    memo.insert(fid, set.clone());
    set
}

/// Pass 2: build the global lock graph (A → B when B is acquired —
/// directly or through any call — while A is held) and fail on cycles.
/// A `lock-order:` annotation at the *inner* site suppresses the edges
/// that site generates. Returns the findings plus the full edge list
/// (the recorded lock-order DAG, used by docs/tests).
pub fn lock_order(ws: &Workspace) -> (Vec<Violation>, Vec<LockEdge>) {
    let res = Resolver::new(ws);
    let mut memo = HashMap::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut edge_keys: BTreeSet<(String, String)> = BTreeSet::new();
    for f in &ws.fns {
        for outer in &f.locks {
            let region = (outer.tok + 1)..=outer.region_end;
            // Direct nesting.
            for inner in &f.locks {
                if !region.contains(&inner.tok) || inner.lock == outer.lock {
                    continue;
                }
                if ws.annotated(f.file, inner.line, "lock-order:") {
                    continue;
                }
                if edge_keys.insert((outer.lock.clone(), inner.lock.clone())) {
                    edges.push(LockEdge {
                        from: outer.lock.clone(),
                        to: inner.lock.clone(),
                        file: f.file,
                        line: inner.line,
                        witness: f.qual_name(),
                    });
                }
            }
            // Interprocedural: locks acquired by callees invoked while
            // the outer guard is held.
            for call in &f.calls {
                if !region.contains(&call.tok) {
                    continue;
                }
                if ws.annotated(f.file, call.line, "lock-order:") {
                    continue;
                }
                let mut inner_locks = BTreeSet::new();
                for callee in res.resolve(f, call) {
                    inner_locks.extend(trans_locks(
                        ws,
                        &res,
                        callee,
                        &mut memo,
                        &mut BTreeSet::new(),
                    ));
                }
                for inner in inner_locks {
                    if inner == outer.lock {
                        continue;
                    }
                    if edge_keys.insert((outer.lock.clone(), inner.clone())) {
                        edges.push(LockEdge {
                            from: outer.lock.clone(),
                            to: inner,
                            file: f.file,
                            line: call.line,
                            witness: f.qual_name(),
                        });
                    }
                }
            }
        }
    }

    // Cycle detection: Tarjan SCC over the lock graph. An edge is a
    // violation only when both endpoints share a non-trivial SCC (or it
    // is a self-loop) — locks merely downstream of a cycle are fine.
    let scc = tarjan_scc(&edges);
    let mut out = Vec::new();
    for e in &edges {
        let same = scc.get(e.from.as_str()) == scc.get(e.to.as_str());
        let comp = scc.get(e.from.as_str());
        let trivial = comp.is_some_and(|&c| scc.values().filter(|&&v| v == c).count() == 1);
        if !(same && (!trivial || e.from == e.to)) {
            continue;
        }
        let members: Vec<&str> = scc
            .iter()
            .filter(|(_, &v)| Some(&v) == comp)
            .map(|(&k, _)| k)
            .collect();
        out.push(Violation {
            file: ws.path(e.file).to_string(),
            line: e.line,
            rule: "lock-order",
            msg: format!(
                "lock-order cycle: `{}` -> `{}` (in `{}`) participates in a cycle over \
                 {{{}}}; fix the nesting order or justify with `// lock-order:`",
                e.from,
                e.to,
                e.witness,
                members.join(", "),
            ),
        });
    }
    (out, edges)
}

/// Tarjan's strongly-connected components over the lock-edge list.
/// Returns lock name → component id.
fn tarjan_scc(edges: &[LockEdge]) -> BTreeMap<&str, usize> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        adj.entry(&e.to).or_default();
    }
    struct State<'a> {
        index: BTreeMap<&'a str, usize>,
        low: BTreeMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        comp: BTreeMap<&'a str, usize>,
        ncomp: usize,
    }
    fn visit<'a>(v: &'a str, adj: &BTreeMap<&'a str, BTreeSet<&'a str>>, st: &mut State<'a>) {
        st.index.insert(v, st.next);
        st.low.insert(v, st.next);
        st.next += 1;
        st.stack.push(v);
        st.on_stack.insert(v);
        if let Some(next) = adj.get(v) {
            for &w in next {
                if !st.index.contains_key(w) {
                    visit(w, adj, st);
                    let lw = st.low[w];
                    let lv = st.low.get_mut(v).expect("visited");
                    *lv = (*lv).min(lw);
                } else if st.on_stack.contains(w) {
                    let iw = st.index[w];
                    let lv = st.low.get_mut(v).expect("visited");
                    *lv = (*lv).min(iw);
                }
            }
        }
        if st.low[v] == st.index[v] {
            let c = st.ncomp;
            st.ncomp += 1;
            while let Some(w) = st.stack.pop() {
                st.on_stack.remove(w);
                st.comp.insert(w, c);
                if w == v {
                    break;
                }
            }
        }
    }
    let mut st = State {
        index: BTreeMap::new(),
        low: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        comp: BTreeMap::new(),
        ncomp: 0,
    };
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for v in nodes {
        if !st.index.contains_key(v) {
            visit(v, &adj, &mut st);
        }
    }
    st.comp
}

/// Pass 3: every atomic with Release-class stores needs an
/// Acquire-class load somewhere in the workspace (and vice versa);
/// relaxed-only atomics are fine (counters), and `pairing-ok:` at any
/// site justifies the whole field.
pub fn atomic_pairing(ws: &Workspace) -> Vec<Violation> {
    struct FieldUse {
        rel_stores: Vec<(usize, usize)>,
        acq_loads: Vec<(usize, usize)>,
        any_annotated: bool,
        /// Any op with an unparsed ordering (variable, helper fn) —
        /// treated as SeqCst on both sides, i.e. paired.
        unknown: bool,
    }
    let mut fields: BTreeMap<String, FieldUse> = BTreeMap::new();
    for f in &ws.fns {
        for op in &f.atomics {
            let entry = fields.entry(op.field.clone()).or_insert(FieldUse {
                rel_stores: Vec::new(),
                acq_loads: Vec::new(),
                any_annotated: false,
                unknown: false,
            });
            if ws.annotated(f.file, op.line, "pairing-ok:") {
                entry.any_annotated = true;
            }
            match (op.load_ord, op.store_ord) {
                (None, None) => entry.unknown = true,
                (lo, so) => {
                    if so.is_some_and(|o| o.is_release_class()) {
                        entry.rel_stores.push((f.file, op.line));
                    }
                    if lo.is_some_and(|o| o.is_acquire_class()) {
                        entry.acq_loads.push((f.file, op.line));
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for (field, usage) in &fields {
        if usage.any_annotated || usage.unknown {
            continue;
        }
        let (one_sided, missing) = match (usage.rel_stores.is_empty(), usage.acq_loads.is_empty()) {
            (false, true) => (&usage.rel_stores, "no Acquire-class load"),
            (true, false) => (&usage.acq_loads, "no Release-class store"),
            _ => continue,
        };
        for &(file, line) in one_sided {
            out.push(Violation {
                file: ws.path(file).to_string(),
                line,
                rule: "atomic-pairing",
                msg: format!(
                    "atomic `{field}` has {missing} anywhere in the workspace; one-sided \
                     Release/Acquire publishes nothing — pair it, relax it, or justify \
                     with `// pairing-ok:`"
                ),
            });
        }
    }
    out
}
