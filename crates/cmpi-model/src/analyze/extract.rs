//! Item/impl/fn extraction over the token stream.
//!
//! Turns one lexed source file into a list of [`FnInfo`] fact records:
//! the calls a function makes, the OS-blocking primitives it touches,
//! the locks it acquires (with an approximate guard-held region), and
//! the atomic operations it performs. The extraction is syntactic and
//! deliberately conservative — over-approximating calls and guard
//! regions is safe for the taint and lock-order passes (false edges can
//! be justified with annotations; missed edges cannot be), while the
//! declaration sets keep method-name matching from drowning in noise
//! (`.lock()` only counts on a receiver declared as a `Mutex`/`RwLock`,
//! `.wait()` only on a declared `Condvar`).

use std::collections::{BTreeMap, BTreeSet};

use crate::strip::{lex, Tok, TokKind};

/// One source file handed to the analyzer. `path` uses forward slashes
/// relative to the workspace root.
#[derive(Clone, Debug)]
pub struct SourceFile {
    pub path: String,
    pub text: String,
}

/// Workspace-wide declaration name sets, harvested from field, static,
/// parameter, and `let` declarations before any function is extracted.
#[derive(Clone, Debug, Default)]
pub struct Decls {
    /// Names declared as `Condvar` / `CondvarSlot`.
    pub condvars: BTreeSet<String>,
    /// Names declared as `Mutex` / `RwLock` / `CondvarSlot` (anything
    /// with a blocking `.lock()`-family acquisition).
    pub locks: BTreeSet<String>,
    /// Names declared as `Atomic*`.
    pub atomics: BTreeSet<String>,
    /// Names declared as mpsc `Receiver`.
    pub receivers: BTreeSet<String>,
    /// Names declared as `JoinHandle`.
    pub join_handles: BTreeSet<String>,
    /// `(file, declared name)` → the uppercase type idents in its
    /// declaration window (e.g. `queues` → {`Box`, `Mutex`,
    /// `VecDeque`}). Used to keep method-call resolution from linking
    /// `.len()`/`.get()` on a container to unrelated workspace fns.
    /// File-scoped on purpose: a `q: MpscQueue` field in one crate must
    /// not type a `|q|` closure parameter in another.
    pub typed: BTreeMap<(usize, String), BTreeSet<String>>,
    /// Alias → canonical name, from `let a = &path.to.b;` bindings, so
    /// ops through the alias unify with ops on the field itself.
    pub canon: BTreeMap<String, String>,
}

impl Decls {
    /// Follow the alias chain (bounded) to the canonical identity.
    pub fn canonical<'a>(&'a self, name: &'a str) -> &'a str {
        let mut cur = name;
        for _ in 0..8 {
            match self.canon.get(cur) {
                Some(next) if next != cur => cur = next,
                _ => break,
            }
        }
        cur
    }

    /// Type idents recorded for `name` as declared in `file` (already
    /// canonicalized names only — callers pass `canonical(..)`).
    pub fn typed_of(&self, file: usize, name: &str) -> Option<&BTreeSet<String>> {
        self.typed.get(&(file, name.to_string()))
    }
}

/// A call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    pub name: String,
    /// Immediate path qualifier (`thread` in `thread::sleep`, `Condvar`
    /// in `Condvar::wait`), if any.
    pub qual: Option<String>,
    /// True for `.name(…)` method-call syntax.
    pub method: bool,
    /// Nearest nameable identifier of the receiver chain for method
    /// calls (`self` for `self.f()`, `log` for `self.log.get(k)`; None
    /// for call-result receivers like `f().g()`).
    pub recv: Option<String>,
    /// Top-level argument count at the call site (used to arity-filter
    /// name-based resolution).
    pub args_n: usize,
    pub line: usize,
    /// Token index of the callee name in the file's token stream.
    pub tok: usize,
}

/// Which OS-blocking primitive a [`BlockSite`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    CondvarWait,
    ThreadSleep,
    ThreadPark,
    ChanRecv,
    ThreadJoin,
}

impl BlockKind {
    pub fn describe(self) -> &'static str {
        match self {
            BlockKind::CondvarWait => "condvar wait",
            BlockKind::ThreadSleep => "thread::sleep",
            BlockKind::ThreadPark => "thread::park",
            BlockKind::ChanRecv => "channel recv",
            BlockKind::ThreadJoin => "thread join",
        }
    }
}

/// A direct OS-blocking call site.
#[derive(Clone, Debug)]
pub struct BlockSite {
    pub kind: BlockKind,
    /// Human-readable site, e.g. `park.wait`.
    pub what: String,
    pub line: usize,
    pub tok: usize,
    /// Identifiers appearing in the call's arguments (used to recognize
    /// the condvar-wait-releases-this-guard pattern).
    pub args: Vec<String>,
}

/// A blocking lock acquisition (`.lock()` / `.read()` / `.write()` on a
/// declared `Mutex`/`RwLock`/`CondvarSlot` receiver).
#[derive(Clone, Debug)]
pub struct LockSite {
    /// Lock identity: the receiver's field/binding name.
    pub lock: String,
    pub line: usize,
    /// Token index of the acquisition method name.
    pub tok: usize,
    /// Token index (inclusive) up to which the guard is conservatively
    /// considered held: end of statement for temporaries, end of the
    /// enclosing block (or an explicit `drop(guard)`) for `let` guards.
    pub region_end: usize,
    /// The `let` binding the guard landed in, if any.
    pub guard: Option<String>,
}

/// Memory-ordering class of one atomic operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ord {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Ord {
    fn parse(s: &str) -> Option<Ord> {
        Some(match s {
            "Relaxed" => Ord::Relaxed,
            "Acquire" => Ord::Acquire,
            "Release" => Ord::Release,
            "AcqRel" => Ord::AcqRel,
            "SeqCst" => Ord::SeqCst,
            _ => return None,
        })
    }

    /// Does this ordering carry release semantics on a store side?
    pub fn is_release_class(self) -> bool {
        matches!(self, Ord::Release | Ord::AcqRel | Ord::SeqCst)
    }

    /// Does this ordering carry acquire semantics on a load side?
    pub fn is_acquire_class(self) -> bool {
        matches!(self, Ord::Acquire | Ord::AcqRel | Ord::SeqCst)
    }
}

/// One atomic operation on a declared atomic field/binding.
#[derive(Clone, Debug)]
pub struct AtomicOp {
    /// The atomic's field/binding name (workspace-wide identity).
    pub field: String,
    /// Method name (`load`, `store`, `fetch_add`, …).
    pub op: String,
    /// Effective load-side ordering, if the op has a load side.
    pub load_ord: Option<Ord>,
    /// Effective store-side ordering, if the op has a store side.
    pub store_ord: Option<Ord>,
    pub line: usize,
}

/// Everything the passes need to know about one function.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Index into the workspace file table.
    pub file: usize,
    pub name: String,
    /// Surrounding `impl`/`trait` type, if any.
    pub impl_type: Option<String>,
    /// Number of non-`self` parameters (for arity-filtered resolution).
    pub params_n: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub calls: Vec<Call>,
    pub blocks: Vec<BlockSite>,
    pub locks: Vec<LockSite>,
    pub atomics: Vec<AtomicOp>,
}

impl FnInfo {
    /// `Type::name` or bare `name`.
    pub fn qual_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

const WAIT_METHODS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_timeout",
    "wait_while",
    "wait_until",
    "wait_timeout_while",
];

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];
const NONBLOCK_LOCK_METHODS: &[&str] = &["try_lock", "try_read", "try_write"];

const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "in", "move", "as", "ref", "mut",
    "else", "unsafe", "box", "dyn", "impl", "use", "pub", "where", "break", "continue", "async",
    "await", "crate", "super", "Self", "self", "true", "false", "const", "static", "type", "enum",
    "struct", "trait", "mod", "extern", "yield",
];

/// Type names that classify a declaration into [`Decls`] sets.
fn classify_type_ident(name: &str, ty: &str, decls: &mut Decls) {
    match ty {
        "Condvar" => {
            decls.condvars.insert(name.to_string());
        }
        "CondvarSlot" => {
            decls.condvars.insert(name.to_string());
            decls.locks.insert(name.to_string());
        }
        "Mutex" | "RwLock" => {
            decls.locks.insert(name.to_string());
        }
        "Receiver" => {
            decls.receivers.insert(name.to_string());
        }
        "JoinHandle" => {
            decls.join_handles.insert(name.to_string());
        }
        t if t.starts_with("Atomic") && t.len() > "Atomic".len() => {
            decls.atomics.insert(name.to_string());
        }
        _ => {}
    }
}

/// Pre-lexed view of one file shared by declaration harvesting and
/// function extraction.
pub struct LexedFile<'a> {
    pub text: &'a str,
    pub toks: Vec<Tok>,
}

impl<'a> LexedFile<'a> {
    pub fn new(text: &'a str) -> Self {
        LexedFile {
            text,
            toks: lex(text),
        }
    }

    fn txt(&self, i: usize) -> &'a str {
        self.toks[i].text(self.text)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text(self.text).starts_with(c))
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
    }
}

/// Harvest declaration names (`name: Type`, `static NAME: Type`,
/// `let name = Type::new(...)`, `let name: Type = ...`) into `decls`.
pub fn collect_decls(file_idx: usize, file: &LexedFile<'_>, decls: &mut Decls) {
    let n = file.toks.len();
    for i in 0..n {
        if !file.is_ident(i) {
            continue;
        }
        let name = file.txt(i);
        // `let [mut] name = Type::new(...)` (also `Arc::new(Type::new(..))`
        // is skipped — only the first type ident after `=` counts, and
        // `Arc` classifies as nothing).
        if name == "let" {
            let mut j = i + 1;
            if file.is_ident(j) && file.txt(j) == "mut" {
                j += 1;
            }
            if file.is_ident(j) && file.is_punct(j + 1, '=') && file.is_ident(j + 2) {
                let bound = file.txt(j);
                let ty = file.txt(j + 2);
                classify_type_ident(bound, ty, decls);
                if ty.chars().next().is_some_and(char::is_uppercase) {
                    decls
                        .typed
                        .entry((file_idx, bound.to_string()))
                        .or_default()
                        .insert(ty.to_string());
                }
            }
            continue;
        }
        // `name : Type…` — a field, parameter, static, or typed let. The
        // `:` must not be half of `::`.
        if !file.is_punct(i + 1, ':') || file.is_punct(i + 2, ':') || file.is_punct(i - 1, ':') {
            continue;
        }
        // Scan a bounded window of the type expression for a known
        // wrapper name, stopping at clear declaration terminators.
        let mut angle = 0i32;
        for j in (i + 2)..n.min(i + 2 + 24) {
            let t = &file.toks[j];
            match t.kind {
                TokKind::Punct => match t.text(file.text) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "," | ";" | ")" | "}" | "=" | "{" if angle <= 0 => break,
                    _ => {}
                },
                TokKind::Ident => {
                    let ty = t.text(file.text);
                    classify_type_ident(name, ty, decls);
                    if ty.chars().next().is_some_and(char::is_uppercase) {
                        decls
                            .typed
                            .entry((file_idx, name.to_string()))
                            .or_default()
                            .insert(ty.to_string());
                    }
                }
                _ => {}
            }
        }
    }
}

/// Harvest `let [mut] a = [&[mut]] simple.place.expr;` aliases whose
/// final identifier is an already-known lock/condvar/atomic, extending
/// the membership sets and the canonical-name map. Returns whether any
/// new alias was learned (callers iterate to a fixpoint so chains like
/// `let a = &b; let c = &a;` resolve regardless of file order).
pub fn collect_aliases(file: &LexedFile<'_>, decls: &mut Decls) -> bool {
    let n = file.toks.len();
    let mut changed = false;
    for i in 0..n {
        if !(file.is_ident(i) && file.txt(i) == "let") {
            continue;
        }
        let mut j = i + 1;
        if file.is_ident(j) && file.txt(j) == "mut" {
            j += 1;
        }
        if !(file.is_ident(j) && file.is_punct(j + 1, '=')) {
            continue;
        }
        let alias = file.txt(j);
        // Walk the RHS: only place expressions (idents, `&`, `.`,
        // `::`, `mut`, index brackets) qualify — a `(` or `{` means a
        // call or construction, whose result is not the named thing.
        let mut last_ident: Option<&str> = None;
        let mut bracket = 0i32;
        let mut ok = false;
        for k in (j + 2)..n.min(j + 2 + 24) {
            let t = &file.toks[k];
            match t.kind {
                TokKind::Ident => {
                    let s = t.text(file.text);
                    if bracket == 0 && s != "mut" {
                        last_ident = Some(s);
                    }
                }
                TokKind::Num => {}
                TokKind::Punct => match t.text(file.text) {
                    ";" => {
                        ok = true;
                        break;
                    }
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "&" | "." | ":" | "*" => {}
                    _ => break,
                },
                _ => break,
            }
        }
        let Some(target) = last_ident else { continue };
        if !ok || target == alias {
            continue;
        }
        let canon_target = decls.canonical(target).to_string();
        let mut learned = false;
        if decls.locks.contains(&canon_target) {
            learned |= decls.locks.insert(alias.to_string());
        }
        if decls.condvars.contains(&canon_target) {
            learned |= decls.condvars.insert(alias.to_string());
        }
        if decls.atomics.contains(&canon_target) {
            learned |= decls.atomics.insert(alias.to_string());
        }
        if learned {
            decls.canon.insert(alias.to_string(), canon_target);
            changed = true;
        }
    }
    changed
}

/// Attribute text accumulated in front of an item, normalized to a
/// whitespace-free string for `cfg` sniffing.
fn attr_is_test_or_model(attr: &str) -> bool {
    let a: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
    a.contains("cfg(test")
        || a.contains("(test,")
        || a.contains(",test)")
        || (a.contains("cmpi_model") && !a.contains("not(cmpi_model"))
}

struct Extractor<'a> {
    file: &'a LexedFile<'a>,
    file_idx: usize,
    decls: &'a Decls,
    /// Matching close index for every open `{`/`(`/`[`; usize::MAX when
    /// unmatched (runs to end of file).
    close_of: Vec<usize>,
    /// Brace depth at each token (before processing it).
    depth: Vec<usize>,
    out: Vec<FnInfo>,
}

pub fn extract_fns(file_idx: usize, file: &LexedFile<'_>, decls: &Decls) -> Vec<FnInfo> {
    let n = file.toks.len();
    let mut close_of = vec![usize::MAX; n];
    let mut depth = vec![0usize; n];
    let mut stack: Vec<(char, usize)> = Vec::new();
    let mut d = 0usize;
    #[allow(clippy::needless_range_loop)] // `i` also feeds txt()/close_of writes
    for i in 0..n {
        depth[i] = d;
        if file.toks[i].kind != TokKind::Punct {
            continue;
        }
        match file.txt(i) {
            "{" => {
                stack.push(('{', i));
                d += 1;
            }
            "(" => stack.push(('(', i)),
            "[" => stack.push(('[', i)),
            "}" => {
                d = d.saturating_sub(1);
                // Pop through any unclosed ( / [ (lexer junk tolerance).
                while let Some((k, at)) = stack.pop() {
                    if k == '{' {
                        close_of[at] = i;
                        break;
                    }
                    close_of[at] = i;
                }
            }
            ")" => {
                if let Some(&(k, at)) = stack.last() {
                    if k == '(' {
                        stack.pop();
                        close_of[at] = i;
                    }
                }
            }
            "]" => {
                if let Some(&(k, at)) = stack.last() {
                    if k == '[' {
                        stack.pop();
                        close_of[at] = i;
                    }
                }
            }
            _ => {}
        }
    }
    let mut ex = Extractor {
        file,
        file_idx,
        decls,
        close_of,
        depth,
        out: Vec::new(),
    };
    ex.parse_items(0, n, None, false);
    ex.out
}

impl<'a> Extractor<'a> {
    fn close(&self, open: usize) -> usize {
        let c = self.close_of[open];
        if c == usize::MAX {
            self.file.toks.len()
        } else {
            c
        }
    }

    /// Scan `lo..hi` for items; `impl_type` is the enclosing impl/trait
    /// type, `in_test` marks `#[cfg(test)]`-style subtrees to skip.
    fn parse_items(&mut self, lo: usize, hi: usize, impl_type: Option<&str>, in_test: bool) {
        let mut i = lo;
        let mut pending_attr = String::new();
        while i < hi {
            // Attributes: `#[...]` / `#![...]`.
            if self.file.is_punct(i, '#') {
                let mut j = i + 1;
                if self.file.is_punct(j, '!') {
                    j += 1;
                }
                if self.file.is_punct(j, '[') {
                    let end = self.close(j);
                    for k in j..=end.min(self.file.toks.len().saturating_sub(1)) {
                        pending_attr.push_str(self.file.txt(k));
                    }
                    i = end + 1;
                    continue;
                }
                i += 1;
                continue;
            }
            if !self.file.is_ident(i) {
                i += 1;
                continue;
            }
            let kw = self.file.txt(i);
            match kw {
                "impl" | "trait" => {
                    let skip = in_test || attr_is_test_or_model(&pending_attr);
                    pending_attr.clear();
                    let (ty, body_open) = self.parse_impl_header(i, hi, kw == "trait");
                    match body_open {
                        Some(open) => {
                            let end = self.close(open);
                            self.parse_items(open + 1, end, ty.as_deref(), skip || in_test);
                            i = end + 1;
                        }
                        None => i += 1,
                    }
                }
                "mod" => {
                    let test = in_test
                        || attr_is_test_or_model(&pending_attr)
                        || (!pending_attr.is_empty()
                            && self.file.is_ident(i + 1)
                            && matches!(self.file.txt(i + 1), "tests" | "model_tests"));
                    pending_attr.clear();
                    // `mod name;` or `mod name { … }`.
                    let mut j = i + 1;
                    while j < hi && !self.file.is_punct(j, '{') && !self.file.is_punct(j, ';') {
                        j += 1;
                    }
                    if j < hi && self.file.is_punct(j, '{') {
                        let end = self.close(j);
                        self.parse_items(j + 1, end, impl_type, test);
                        i = end + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "macro_rules" => {
                    pending_attr.clear();
                    let mut j = i + 1;
                    while j < hi && !self.file.is_punct(j, '{') {
                        j += 1;
                    }
                    i = if j < hi { self.close(j) + 1 } else { hi };
                }
                "fn" => {
                    let skip = in_test || attr_is_test_or_model(&pending_attr);
                    pending_attr.clear();
                    if !self.file.is_ident(i + 1) {
                        i += 1;
                        continue;
                    }
                    let name = self.file.txt(i + 1).to_string();
                    let line = self.file.toks[i].line;
                    // Find the body `{` (or `;` for a bodiless decl).
                    let mut j = i + 2;
                    while j < hi && !self.file.is_punct(j, '{') && !self.file.is_punct(j, ';') {
                        j += 1;
                    }
                    if j >= hi || self.file.is_punct(j, ';') {
                        i = j + 1;
                        continue;
                    }
                    let end = self.close(j);
                    if !skip {
                        let mut info = FnInfo {
                            file: self.file_idx,
                            name,
                            impl_type: impl_type.map(str::to_string),
                            params_n: self.count_params(i + 2, j),
                            line,
                            calls: Vec::new(),
                            blocks: Vec::new(),
                            locks: Vec::new(),
                            atomics: Vec::new(),
                        };
                        self.scan_body(j + 1, end, &mut info);
                        self.out.push(info);
                    }
                    i = end + 1;
                }
                _ => {
                    pending_attr.clear();
                    i += 1;
                }
            }
        }
    }

    /// Count top-level items separated by `,` between `open` (a `(`,
    /// `[`, or after a call/fn name) and its matching close. Returns 0
    /// for empty parens.
    fn count_commas(&self, open: usize) -> usize {
        let end = self.close(open).min(self.file.toks.len());
        if open + 1 >= end {
            return 0;
        }
        let mut depth = 0i32;
        let mut commas = 0usize;
        for k in (open + 1)..end {
            if self.file.toks[k].kind != TokKind::Punct {
                continue;
            }
            match self.file.txt(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => commas += 1,
                _ => {}
            }
        }
        commas + 1
    }

    /// Non-`self` parameter count of a fn whose name ends before
    /// `after_name` and whose body opens at `body`. Skips leading
    /// generics (tolerating `Fn(..) -> X` bounds via `->` skipping).
    fn count_params(&self, after_name: usize, body: usize) -> usize {
        let mut j = after_name;
        if self.file.is_punct(j, '<') {
            let mut d = 1i32;
            j += 1;
            while j < body && d > 0 {
                if self.file.is_punct(j, '-') && self.file.is_punct(j + 1, '>') {
                    j += 2;
                    continue;
                }
                if self.file.is_punct(j, '<') {
                    d += 1;
                } else if self.file.is_punct(j, '>') {
                    d -= 1;
                }
                j += 1;
            }
        }
        if !self.file.is_punct(j, '(') {
            return 0;
        }
        let count = self.count_commas(j);
        if count == 0 {
            return 0;
        }
        // A leading `self` receiver (by itself or `&[mut] self` /
        // `self: …`) does not count toward call-site arity.
        let end = self.close(j).min(self.file.toks.len());
        let mut depth = 0i32;
        for k in (j + 1)..end {
            if self.file.toks[k].kind == TokKind::Punct {
                match self.file.txt(k) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
            } else if self.file.is_ident(k) && self.file.txt(k) == "self" {
                return count - 1;
            }
        }
        count
    }

    /// Parse an `impl`/`trait` header starting at `at` (the keyword).
    /// Returns the subject type name and the body-open token index.
    fn parse_impl_header(
        &self,
        at: usize,
        hi: usize,
        is_trait: bool,
    ) -> (Option<String>, Option<usize>) {
        let mut j = at + 1;
        // Skip leading generics `<...>`.
        if self.file.is_punct(j, '<') {
            let mut d = 1i32;
            j += 1;
            while j < hi && d > 0 {
                if self.file.is_punct(j, '<') {
                    d += 1;
                } else if self.file.is_punct(j, '>') {
                    d -= 1;
                }
                j += 1;
            }
        }
        let mut current: Vec<&str> = Vec::new();
        let mut after_for: Option<Vec<&str>> = None;
        while j < hi && !self.file.is_punct(j, '{') && !self.file.is_punct(j, ';') {
            if self.file.is_ident(j) {
                let t = self.file.txt(j);
                if t == "for" && !is_trait {
                    after_for = Some(Vec::new());
                } else if t == "where" {
                    break;
                } else {
                    match &mut after_for {
                        Some(v) => v.push(t),
                        None => current.push(t),
                    }
                }
            }
            j += 1;
        }
        while j < hi && !self.file.is_punct(j, '{') && !self.file.is_punct(j, ';') {
            j += 1;
        }
        let list = after_for.unwrap_or(current);
        let ty = list
            .iter()
            .find(|t| !matches!(**t, "crate" | "super" | "self" | "dyn" | "mut" | "const"))
            .map(|t| t.to_string());
        if j < hi && self.file.is_punct(j, '{') {
            (ty, Some(j))
        } else {
            (ty, None)
        }
    }

    /// Walk the receiver chain backwards from the token before a `.`
    /// and return the nearest nameable identifier.
    fn walk_receiver(&self, mut j: usize) -> Option<String> {
        loop {
            let t = self.file.toks.get(j)?;
            match t.kind {
                TokKind::Ident => {
                    let s = t.text(self.file.text);
                    return Some(s.to_string());
                }
                TokKind::Punct => match t.text(self.file.text) {
                    "]" | ")" => {
                        // Jump to the matching opener, then look left.
                        let open = (0..j).rev().find(|&k| self.close_of[k] == j)?;
                        if self.file.is_punct(open, '(') {
                            // `f(..).lock()` — receiver is a call result;
                            // nothing nameable.
                            return None;
                        }
                        j = open.checked_sub(1)?;
                    }
                    "?" => j = j.checked_sub(1)?,
                    _ => return None,
                },
                _ => return None,
            }
        }
    }

    /// Identifiers inside the argument parens opening at `open`.
    fn arg_idents(&self, open: usize) -> Vec<String> {
        let mut out = Vec::new();
        if !self.file.is_punct(open, '(') {
            return out;
        }
        let end = self.close(open);
        for k in (open + 1)..end.min(self.file.toks.len()) {
            if self.file.is_ident(k) {
                out.push(self.file.txt(k).to_string());
            }
        }
        out
    }

    /// Memory orderings named inside the argument parens.
    fn arg_orderings(&self, open: usize) -> Vec<Ord> {
        let mut out = Vec::new();
        if !self.file.is_punct(open, '(') {
            return out;
        }
        let end = self.close(open);
        for k in (open + 1)..end.min(self.file.toks.len()) {
            if self.file.is_ident(k) {
                if let Some(o) = Ord::parse(self.file.txt(k)) {
                    out.push(o);
                }
            }
        }
        out
    }

    /// End of the statement containing token `at`: the next `;` at a
    /// brace depth no greater than `at`'s, else the end of the
    /// enclosing block.
    fn stmt_end(&self, at: usize, hi: usize) -> usize {
        let d = self.depth[at];
        for j in at..hi {
            if self.file.is_punct(j, ';') && self.depth[j] <= d {
                return j;
            }
        }
        hi
    }

    /// End of the block enclosing token `at` (token index of its `}`),
    /// bounded by `hi`.
    fn block_end(&self, at: usize, hi: usize) -> usize {
        let d = self.depth[at];
        if d == 0 {
            return hi;
        }
        for j in at..hi {
            if self.file.is_punct(j, '}') && self.depth[j] == d {
                return j;
            }
        }
        hi
    }

    /// `let [mut] g = <receiver>.lock()` — find the guard binding for
    /// an acquisition whose statement starts somewhere left of `at`.
    fn guard_binding(&self, at: usize) -> Option<String> {
        // Walk back to the statement boundary.
        let mut j = at;
        while j > 0 {
            let t = &self.file.toks[j - 1];
            if t.kind == TokKind::Punct {
                let s = t.text(self.file.text);
                if s == ";" || s == "{" || s == "}" {
                    break;
                }
            }
            j -= 1;
        }
        if self.file.is_ident(j) && self.file.txt(j) == "let" {
            let mut k = j + 1;
            if self.file.is_ident(k) && self.file.txt(k) == "mut" {
                k += 1;
            }
            if self.file.is_ident(k) && self.file.is_punct(k + 1, '=') {
                return Some(self.file.txt(k).to_string());
            }
        }
        None
    }

    /// Explicit `drop(g)` after `at` inside `hi`, if any.
    fn drop_of(&self, guard: &str, at: usize, hi: usize) -> Option<usize> {
        (at..hi).find(|&j| {
            self.file.is_ident(j)
                && self.file.txt(j) == "drop"
                && self.file.is_punct(j + 1, '(')
                && self.file.is_ident(j + 2)
                && self.file.txt(j + 2) == guard
                && self.file.is_punct(j + 3, ')')
        })
    }

    /// Scan a function body for calls, blocking sites, lock
    /// acquisitions, and atomic operations.
    fn scan_body(&mut self, lo: usize, hi: usize, info: &mut FnInfo) {
        let hi = hi.min(self.file.toks.len());
        let mut i = lo;
        while i < hi {
            if self.file.is_ident(i) && self.file.txt(i) == "macro_rules" {
                let mut j = i + 1;
                while j < hi && !self.file.is_punct(j, '{') {
                    j += 1;
                }
                i = if j < hi { self.close(j) + 1 } else { hi };
                continue;
            }
            if !(self.file.is_ident(i) && self.file.is_punct(i + 1, '(')) {
                i += 1;
                continue;
            }
            let name = self.file.txt(i);
            if KEYWORDS.contains(&name) {
                i += 1;
                continue;
            }
            // `fn name(` — a nested definition header, not a call.
            if i > lo && self.file.is_ident(i - 1) && self.file.txt(i - 1) == "fn" {
                i += 1;
                continue;
            }
            let line = self.file.toks[i].line;
            let method = i > 0 && self.file.is_punct(i - 1, '.');
            let qual = if i >= 3
                && self.file.is_punct(i - 1, ':')
                && self.file.is_punct(i - 2, ':')
                && self.file.is_ident(i - 3)
            {
                Some(self.file.txt(i - 3).to_string())
            } else {
                None
            };
            let recv = if method {
                i.checked_sub(2).and_then(|j| self.walk_receiver(j))
            } else {
                None
            };
            let args_n = self.count_commas(i + 1);

            let recv_is = |set: &BTreeSet<String>| recv.as_ref().is_some_and(|r| set.contains(r));

            // Blocking primitives.
            let block_kind = if WAIT_METHODS.contains(&name)
                && (recv_is(&self.decls.condvars)
                    || matches!(qual.as_deref(), Some("Condvar" | "CondvarSlot")))
            {
                Some(BlockKind::CondvarWait)
            } else if name == "sleep" && qual.as_deref() == Some("thread") {
                Some(BlockKind::ThreadSleep)
            } else if matches!(name, "park" | "park_timeout") && qual.as_deref() == Some("thread") {
                Some(BlockKind::ThreadPark)
            } else if matches!(name, "recv" | "recv_timeout") && recv_is(&self.decls.receivers) {
                Some(BlockKind::ChanRecv)
            } else if name == "join" && recv_is(&self.decls.join_handles) {
                Some(BlockKind::ThreadJoin)
            } else {
                None
            };
            if let Some(kind) = block_kind {
                let what = match &recv {
                    Some(r) => format!("{r}.{name}"),
                    None => match &qual {
                        Some(q) => format!("{q}::{name}"),
                        None => name.to_string(),
                    },
                };
                info.blocks.push(BlockSite {
                    kind,
                    what,
                    line,
                    tok: i,
                    args: self.arg_idents(i + 1),
                });
                i += 2;
                continue;
            }

            // Lock acquisitions. Zero-arg `.lock()`/`.read()`/`.write()`
            // on any nameable receiver is a lock acquisition — the std /
            // parking_lot blocking acquisitions take no arguments, while
            // same-named I/O or MR methods all take at least one. This
            // also catches locks reached through closure params the decl
            // sets cannot see.
            let lockish = recv_is(&self.decls.locks)
                || match recv
                    .as_ref()
                    .and_then(|r| self.decls.typed_of(self.file_idx, self.decls.canonical(r)))
                {
                    Some(tys) => tys
                        .iter()
                        .any(|t| matches!(t.as_str(), "Mutex" | "RwLock" | "CondvarSlot")),
                    // Unknown receiver (closure param, pattern binding):
                    // assume lock — conservative for the taint pass.
                    None => recv.is_some(),
                };
            if LOCK_METHODS.contains(&name) && method && args_n == 0 && lockish {
                let guard = self.guard_binding(i);
                let region_end = match &guard {
                    Some(g) => self
                        .drop_of(g, i, hi)
                        .unwrap_or_else(|| self.block_end(i, hi)),
                    None => self.stmt_end(i, hi),
                };
                let raw = recv.clone().unwrap_or_default();
                info.locks.push(LockSite {
                    lock: self.decls.canonical(&raw).to_string(),
                    line,
                    tok: i,
                    region_end,
                    guard,
                });
                i += 2;
                continue;
            }
            // Non-blocking lock probes: neither a blocking site nor a
            // call edge worth following.
            if NONBLOCK_LOCK_METHODS.contains(&name) && method && args_n == 0 && lockish {
                i += 2;
                continue;
            }

            // Condvar notifies are not calls into workspace code.
            if matches!(name, "notify_one" | "notify_all") && recv_is(&self.decls.condvars) {
                i += 2;
                continue;
            }

            // Atomic operations.
            if ATOMIC_OPS.contains(&name) && recv_is(&self.decls.atomics) {
                let ords = self.arg_orderings(i + 1);
                let first = ords.first().copied();
                let second = ords.get(1).copied();
                let (load_ord, store_ord) = match name {
                    "load" => (first, None),
                    "store" => (None, first),
                    "compare_exchange" | "compare_exchange_weak" => {
                        // Success ordering acts on both sides; the
                        // (weaker) failure ordering only loads.
                        let succ = ords.len().checked_sub(2).and_then(|k| ords.get(k)).copied();
                        (succ, succ)
                    }
                    "fetch_update" => (second.or(first), first),
                    _ => (first, first),
                };
                let raw = recv.clone().unwrap_or_default();
                info.atomics.push(AtomicOp {
                    field: self.decls.canonical(&raw).to_string(),
                    op: name.to_string(),
                    load_ord,
                    store_ord,
                    line,
                });
                i += 2;
                continue;
            }

            info.calls.push(Call {
                name: name.to_string(),
                qual,
                method,
                recv,
                args_n,
                line,
                tok: i,
            });
            i += 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_file(src: &str) -> (Decls, Vec<FnInfo>) {
        let lexed = LexedFile::new(src);
        let mut decls = Decls::default();
        collect_decls(0, &lexed, &mut decls);
        let fns = extract_fns(0, &lexed, &decls);
        (decls, fns)
    }

    #[test]
    fn decls_classify_fields_statics_params_and_lets() {
        let src = r#"
            struct S { cv: Condvar, slot: CondvarSlot, m: Mutex<u32>, rw: RwLock<Vec<u8>> }
            static PENDING: AtomicUsize = AtomicUsize::new(0);
            fn f(rx: Receiver<u32>, h: JoinHandle<()>) {
                let local = Mutex::new(3);
            }
        "#;
        let (d, _) = one_file(src);
        assert!(d.condvars.contains("cv") && d.condvars.contains("slot"));
        assert!(d.locks.contains("m") && d.locks.contains("rw") && d.locks.contains("slot"));
        assert!(d.locks.contains("local"));
        assert!(d.atomics.contains("PENDING"));
        assert!(d.receivers.contains("rx"));
        assert!(d.join_handles.contains("h"));
        // Paths like `a::b` must not classify `a` via the second `:`.
        assert!(!d.atomics.contains("Relaxed"));
    }

    #[test]
    fn fns_get_impl_types_and_trait_impls_use_the_self_type() {
        let src = r#"
            impl PairQueue { fn acquire(&self) {} }
            impl std::fmt::Debug for PairQueue { fn fmt(&self) {} }
            impl<T: Clone> Wrap<T> { fn get(&self) {} }
            trait Helper { fn assist(&self) { noop(); } fn decl_only(&self); }
            fn free() {}
        "#;
        let (_, fns) = one_file(src);
        let names: Vec<(Option<&str>, &str)> = fns
            .iter()
            .map(|f| (f.impl_type.as_deref(), f.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                (Some("PairQueue"), "acquire"),
                (Some("PairQueue"), "fmt"),
                (Some("Wrap"), "get"),
                (Some("Helper"), "assist"),
                (None, "free"),
            ]
        );
    }

    #[test]
    fn test_modules_and_cfg_test_fns_are_skipped() {
        let src = r#"
            fn real() {}
            #[cfg(test)]
            mod tests { fn helper() {} #[test] fn t() {} }
            #[cfg(test)]
            fn only_in_tests() {}
            #[cfg(not(cmpi_model))]
            fn kept() {}
        "#;
        let (_, fns) = one_file(src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real", "kept"]);
    }

    #[test]
    fn blocking_sites_need_declared_receivers() {
        let src = r#"
            struct S { cv: Condvar, state: Mutex<u32> }
            impl S {
                fn blocks(&self) {
                    let mut g = self.state.lock();
                    self.cv.wait(&mut g);
                    std::thread::sleep(dur);
                }
                fn benign(&self, mpi: &Mpi, req: Req) {
                    mpi.wait(req);
                }
            }
        "#;
        let (_, fns) = one_file(src);
        let blocks: Vec<(&str, BlockKind)> = fns[0]
            .blocks
            .iter()
            .map(|b| (b.what.as_str(), b.kind))
            .collect();
        assert_eq!(
            blocks,
            vec![
                ("cv.wait", BlockKind::CondvarWait),
                ("thread::sleep", BlockKind::ThreadSleep),
            ]
        );
        // The condvar wait's argument names the guard it releases.
        assert!(fns[0].blocks[0].args.contains(&"g".to_string()));
        // `mpi.wait` is an ordinary call edge, not a blocking site.
        assert!(fns[1].blocks.is_empty());
        assert!(fns[1].calls.iter().any(|c| c.name == "wait" && c.method));
    }

    #[test]
    fn lock_sites_track_guards_regions_and_chained_receivers() {
        let src = r#"
            struct P { queues: Vec<Mutex<u32>>, idle: Mutex<u32> }
            impl P {
                fn enqueue(&self, i: usize) {
                    self.queues[i].lock().push_back(i);
                    if self.idle.lock().parked > 0 { self.wakeup(); }
                }
                fn held(&self) {
                    let g = self.idle.lock();
                    self.helper();
                    drop(g);
                    self.after();
                }
            }
        "#;
        let (_, fns) = one_file(src);
        let enqueue = &fns[0];
        assert_eq!(enqueue.locks.len(), 2);
        assert_eq!(enqueue.locks[0].lock, "queues");
        assert!(enqueue.locks[0].guard.is_none());
        // The temporary's region ends at its own `;` — before the
        // second acquisition.
        assert!(enqueue.locks[0].region_end < enqueue.locks[1].tok);
        let held = &fns[1];
        assert_eq!(held.locks[0].guard.as_deref(), Some("g"));
        // drop(g) closes the region before `after` is called.
        let after = held.calls.iter().find(|c| c.name == "after").unwrap();
        let helper = held.calls.iter().find(|c| c.name == "helper").unwrap();
        assert!(helper.tok < held.locks[0].region_end);
        assert!(after.tok > held.locks[0].region_end);
    }

    #[test]
    fn atomic_ops_record_orderings_per_side() {
        let src = r#"
            struct S { seq: AtomicU64 }
            impl S {
                fn ops(&self) {
                    self.seq.store(1, Ordering::Release);
                    let _ = self.seq.load(Ordering::Acquire);
                    self.seq.fetch_add(1, Ordering::Relaxed);
                    self.seq.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed);
                }
            }
        "#;
        let (_, fns) = one_file(src);
        let ops = &fns[0].atomics;
        assert_eq!(ops[0].store_ord, Some(Ord::Release));
        assert_eq!(ops[0].load_ord, None);
        assert_eq!(ops[1].load_ord, Some(Ord::Acquire));
        assert_eq!(ops[2].load_ord, Some(Ord::Relaxed));
        assert_eq!(ops[2].store_ord, Some(Ord::Relaxed));
        assert_eq!(ops[3].store_ord, Some(Ord::AcqRel));
    }

    #[test]
    fn qualified_calls_keep_their_qualifier() {
        let src = "fn f() { thread::sleep(d); pantry::give(x); Endpoint::new(); }";
        let (_, fns) = one_file(src);
        // thread::sleep is a blocking site, the rest are calls.
        assert_eq!(fns[0].blocks.len(), 1);
        let calls: Vec<(Option<&str>, &str)> = fns[0]
            .calls
            .iter()
            .map(|c| (c.qual.as_deref(), c.name.as_str()))
            .collect();
        assert_eq!(
            calls,
            vec![(Some("pantry"), "give"), (Some("Endpoint"), "new")]
        );
    }
}
