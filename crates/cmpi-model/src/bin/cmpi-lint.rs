//! Workspace lint + analyzer driver: walks every crate's `src/` tree
//! plus the root `src/`, applies the line-based rules in
//! `cmpi_model::lint` and (with `--analyze`) the whole-program passes
//! in `cmpi_model::analyze`, and exits non-zero on any violation. Run
//! from the workspace root (scripts/check.sh does).
//!
//! Flags:
//!
//! * `--analyze` — run the call-graph passes (fiber-blocking taint,
//!   lock-order cycles, atomic pairing) instead of the line-based lint.
//! * `--json PATH` — additionally write machine-readable findings to
//!   PATH (schema `cmpi-lint.v1`), which check.sh archives next to the
//!   bench ledger so finding counts are tracked across PRs.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cmpi_model::analyze;
use cmpi_model::lint::{self, Violation};

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(mode: &str, files: usize, violations: &[Violation]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"schema\": \"cmpi-lint.v1\",\n  \"mode\": \"{mode}\",\n  \
         \"files\": {files},\n  \"count\": {},\n  \"findings\": [",
        violations.len()
    ));
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"msg\": \"{}\"}}",
            json_escape(&v.file),
            v.line,
            json_escape(v.rule),
            json_escape(&v.msg),
        ));
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn run_lint(root: &Path) -> Result<(usize, Vec<Violation>), String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| format!("cannot read crates/: {e}"))?;
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files).map_err(|e| format!("walking {}: {e}", src.display()))?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)
            .map_err(|e| format!("walking {}: {e}", root_src.display()))?;
    }
    files.sort();

    let mut violations = Vec::new();
    let mut collectives_src = None;
    let mut packet_src = None;
    let mut error_src = None;
    let mut metrics_src = None;
    for path in &files {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(lint::lint_file(&rel, &src));
        if rel.ends_with("crates/cmpi-core/src/collectives.rs") {
            collectives_src = Some(src);
        } else if rel.ends_with("crates/cmpi-core/src/packet.rs") {
            packet_src = Some(src);
        } else if rel.ends_with("crates/cmpi-core/src/error.rs") {
            error_src = Some(src);
        } else if rel.ends_with("crates/cmpi-telemetry/src/metrics.rs") {
            metrics_src = Some(src);
        }
    }

    match (collectives_src, packet_src) {
        (Some(coll), Some(pkt)) => violations.extend(lint::lint_tag_widths(&coll, &pkt)),
        _ => return Err("collectives.rs / packet.rs not found for the tag-width rule".into()),
    }
    match error_src {
        Some(err) => violations.extend(lint::lint_error_display(&err)),
        None => return Err("error.rs not found for the error-display rule".into()),
    }
    let design_md = std::fs::read_to_string(root.join("DESIGN.md"))
        .map_err(|e| format!("reading DESIGN.md: {e}"))?;
    match metrics_src {
        Some(met) => violations.extend(lint::lint_metric_ids(&met, &design_md)),
        None => return Err("metrics.rs not found for the metric-ids rule".into()),
    }
    violations.extend(lint::lint_rule_inventory(&design_md));
    Ok((files.len(), violations))
}

fn run_analyze(root: &Path) -> Result<(usize, Vec<Violation>), String> {
    let ws = analyze::Workspace::load_root(root)
        .map_err(|e| format!("loading workspace sources: {e}"))?;
    let findings = ws.analyze(&analyze::default_seeds());
    Ok((ws.files.len(), findings))
}

fn main() -> ExitCode {
    let mut do_analyze = false;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--analyze" => do_analyze = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("cmpi-lint: --json requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("cmpi-lint: unknown flag `{other}` (expected --analyze / --json PATH)");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = std::env::current_dir().expect("cwd");
    if !root.join("crates").is_dir() {
        eprintln!("cmpi-lint: run from the workspace root (no crates/ here)");
        return ExitCode::FAILURE;
    }

    let mode = if do_analyze { "analyze" } else { "lint" };
    let result = if do_analyze {
        run_analyze(&root)
    } else {
        run_lint(&root)
    };
    let (files, violations) = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cmpi-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &json_path {
        let doc = render_json(mode, files, &violations);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cmpi-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if violations.is_empty() {
        println!("cmpi-{mode}: {files} files clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("cmpi-{mode}: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
