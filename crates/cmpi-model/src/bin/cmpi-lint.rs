//! Workspace lint driver: walks every crate's `src/` tree plus the root
//! `src/`, applies the rules in `cmpi_model::lint`, and exits non-zero
//! on any violation. Run from the workspace root (scripts/check.sh does).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cmpi_model::lint;

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let root = std::env::current_dir().expect("cwd");
    if !root.join("crates").is_dir() {
        eprintln!("cmpi-lint: run from the workspace root (no crates/ here)");
        return ExitCode::FAILURE;
    }

    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let entries = match std::fs::read_dir(&crates_dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cmpi-lint: cannot read crates/: {e}");
            return ExitCode::FAILURE;
        }
    };
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            if let Err(e) = collect_rs(&src, &mut files) {
                eprintln!("cmpi-lint: walking {}: {e}", src.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        if let Err(e) = collect_rs(&root_src, &mut files) {
            eprintln!("cmpi-lint: walking {}: {e}", root_src.display());
            return ExitCode::FAILURE;
        }
    }
    files.sort();

    let mut violations = Vec::new();
    let mut collectives_src = None;
    let mut packet_src = None;
    let mut error_src = None;
    let mut metrics_src = None;
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cmpi-lint: reading {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(lint::lint_file(&rel, &src));
        if rel.ends_with("crates/cmpi-core/src/collectives.rs") {
            collectives_src = Some(src);
        } else if rel.ends_with("crates/cmpi-core/src/packet.rs") {
            packet_src = Some(src);
        } else if rel.ends_with("crates/cmpi-core/src/error.rs") {
            error_src = Some(src);
        } else if rel.ends_with("crates/cmpi-telemetry/src/metrics.rs") {
            metrics_src = Some(src);
        }
    }

    match (collectives_src, packet_src) {
        (Some(coll), Some(pkt)) => violations.extend(lint::lint_tag_widths(&coll, &pkt)),
        _ => {
            eprintln!("cmpi-lint: collectives.rs / packet.rs not found for the tag-width rule");
            return ExitCode::FAILURE;
        }
    }
    match error_src {
        Some(err) => violations.extend(lint::lint_error_display(&err)),
        None => {
            eprintln!("cmpi-lint: error.rs not found for the error-display rule");
            return ExitCode::FAILURE;
        }
    }
    let design_md = match std::fs::read_to_string(root.join("DESIGN.md")) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cmpi-lint: reading DESIGN.md for the metric-ids rule: {e}");
            return ExitCode::FAILURE;
        }
    };
    match metrics_src {
        Some(met) => violations.extend(lint::lint_metric_ids(&met, &design_md)),
        None => {
            eprintln!("cmpi-lint: metrics.rs not found for the metric-ids rule");
            return ExitCode::FAILURE;
        }
    }

    if violations.is_empty() {
        println!("cmpi-lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("cmpi-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
