//! Public face of the model checker (only under `cfg(cmpi_model)`).
//!
//! ```ignore
//! cmpi_model::model::Builder::new().check(|| {
//!     let cell = Arc::new(RankCell::new());
//!     let p = {
//!         let cell = Arc::clone(&cell);
//!         cmpi_model::model::thread::spawn(move || cell.push(pkt()))
//!     };
//!     // ... consumer logic on this thread ...
//!     p.join();
//! });
//! ```
//!
//! `check` runs the closure under every interleaving the DFS explorer
//! generates (bounded preemption, weak-memory load choices) and panics
//! with a schedule trace plus a `replay: …` line on the first failure —
//! an assertion, a detected data race, or a lost wakeup (all live threads
//! blocked).

use std::sync::Arc;

use crate::engine;

/// Exploration statistics returned by a passing [`Builder::check`].
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Number of distinct interleavings executed.
    pub executions: usize,
}

/// Configures one exhaustive exploration.
#[derive(Clone, Debug)]
pub struct Builder {
    max_executions: usize,
    preemption_bound: usize,
    max_steps: usize,
    max_threads: usize,
}

impl Default for Builder {
    fn default() -> Self {
        let o = engine::Options::default();
        Builder {
            max_executions: o.max_executions,
            preemption_bound: o.preemption_bound,
            max_steps: o.max_steps,
            max_threads: o.max_threads,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap on explored interleavings; exceeding it fails the check (size
    /// the test so exploration completes).
    pub fn max_executions(mut self, n: usize) -> Self {
        self.max_executions = n;
        self
    }

    /// How many involuntary thread switches one interleaving may contain.
    /// Two finds every bug a pair of racing regions can exhibit; three
    /// covers triple-overlap scenarios at a steep execution-count cost.
    pub fn preemption_bound(mut self, n: usize) -> Self {
        self.preemption_bound = n;
        self
    }

    /// Per-execution step cap (livelock brake).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Maximum number of model threads (including the root closure).
    pub fn max_threads(mut self, n: usize) -> Self {
        self.max_threads = n;
        self
    }

    fn options(&self) -> engine::Options {
        engine::Options {
            max_executions: self.max_executions,
            preemption_bound: self.preemption_bound,
            max_steps: self.max_steps,
            max_threads: self.max_threads,
        }
    }

    /// Explore every interleaving of `f`; panic with a replayable trace
    /// on the first failure.
    pub fn check<F>(&self, f: F) -> Stats
    where
        F: Fn() + Send + Sync + 'static,
    {
        match engine::explore(&self.options(), Arc::new(f)) {
            engine::ExploreResult::Passed { executions } => Stats { executions },
            engine::ExploreResult::Failed { report, .. } => panic!("{report}"),
            engine::ExploreResult::BudgetExhausted { executions } => panic!(
                "cmpi-model: exploration budget exhausted after {executions} executions \
                 without covering the schedule space; shrink the test or raise \
                 max_executions"
            ),
        }
    }

    /// Like [`Builder::check`] but *expects* a bug: returns the failure
    /// report, panicking only if exploration finds no failure. Used to
    /// pin deliberately-broken variants.
    pub fn check_expect_failure<F>(&self, f: F) -> String
    where
        F: Fn() + Send + Sync + 'static,
    {
        match engine::explore(&self.options(), Arc::new(f)) {
            engine::ExploreResult::Failed { report, .. } => report,
            engine::ExploreResult::Passed { executions } => {
                panic!("cmpi-model: expected a failure but all {executions} interleavings passed")
            }
            engine::ExploreResult::BudgetExhausted { executions } => panic!(
                "cmpi-model: exploration budget exhausted after {executions} executions \
                 without finding the expected failure"
            ),
        }
    }

    /// Re-run exactly one schedule (the comma-separated choice list from
    /// a report's `replay:` line). Returns the failure report if that
    /// schedule still fails, `None` if it now passes.
    pub fn replay<F>(&self, schedule: &str, f: F) -> Option<String>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let parsed: Vec<usize> = schedule
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad replay token {s:?}"))
            })
            .collect();
        engine::replay_once(&self.options(), &parsed, Arc::new(f))
    }
}

/// [`Builder::check`] with default bounds.
pub fn check<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

/// True when the calling thread is inside a model execution.
pub fn is_active() -> bool {
    engine::current().is_some()
}

/// Extract the `replay: …` schedule string from a failure report.
pub fn extract_replay(report: &str) -> Option<String> {
    report
        .lines()
        .find_map(|l| l.strip_prefix("replay: "))
        .map(|s| s.trim().to_string())
}

/// Model-thread spawning; mirrors `std::thread` but participates in the
/// scheduler. Only usable inside [`check`].
pub mod thread {
    use std::sync::Arc;

    use crate::engine;

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        target: usize,
        slot: Arc<parking_lot::Mutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Block (at model level) until the thread finishes, then take
        /// its result.
        pub fn join(self) -> T {
            let (exec, tid) = engine::current().expect("join outside model execution");
            exec.join_thread(tid, self.target);
            self.slot
                .lock()
                .take()
                .expect("model thread result already taken")
        }
    }

    /// Spawn a model thread. Panics outside [`super::check`].
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (exec, tid) = engine::current().expect("model::thread::spawn outside model::check");
        let slot = Arc::new(parking_lot::Mutex::new(None));
        let slot2 = Arc::clone(&slot);
        let target = exec.spawn_thread(
            tid,
            Box::new(move || {
                let r = f();
                *slot2.lock() = Some(r);
            }),
        );
        JoinHandle { target, slot }
    }

    /// Scheduler-visible yield: prefers handing the baton to another
    /// runnable thread.
    pub fn yield_now() {
        if let Some((exec, tid)) = engine::current() {
            exec.yield_now(tid);
        } else {
            std::thread::yield_now();
        }
    }
}
