//! `cmpi-model`: correctness tooling for the lock-free hot path.
//!
//! The crate has three faces:
//!
//! 1. **A shim synchronization layer** ([`sync`]): drop-in stand-ins for
//!    `std::sync::atomic::Atomic*`, `parking_lot::{Mutex, Condvar}` and a
//!    [`sync::CondvarSlot`] parking primitive. In a normal build they
//!    compile straight down to the real types (zero hot-path cost). Under
//!    `RUSTFLAGS="--cfg cmpi_model"` every load/store/RMW/lock/wait is
//!    routed through an exhaustive model-checking scheduler.
//!
//! 2. **A model checker** ([`model`], only under `cfg(cmpi_model)`): a
//!    loom-style DFS over thread interleavings with a bounded number of
//!    preemptions, a C11-flavoured weak-memory store history (loads may
//!    read stale values unless happens-before forbids it), a FastTrack
//!    vector-clock race detector over [`race`] hooks, lost-wakeup
//!    (deadlock) detection, and a replayable schedule trace printed on
//!    failure.
//!
//! 3. **A repo lint** ([`lint`] + the `cmpi-lint` binary): mechanical
//!    rules the workspace must obey — `// SAFETY:` on every unsafe block,
//!    `// relaxed-ok:` on every `Ordering::Relaxed` outside whitelisted
//!    modules, no `unwrap()/expect()` in hot-path modules, and collective
//!    tag field-widths within their debug-asserted bounds.
//!
//! 4. **A whole-program analyzer** ([`analyze`], the `--analyze` face of
//!    the `cmpi-lint` binary): a dependency-free lexer ([`strip`]) plus
//!    item/impl/fn extraction and an intra-workspace call graph, running
//!    three passes no line-based lint can express — fiber-blocking taint
//!    (no OS-blocking primitive reachable from fiber-executed code),
//!    lock-order cycle detection over the global lock graph, and a
//!    Release/Acquire pairing audit over every named atomic.
//!
//! See `DESIGN.md` §13 for the per-structure memory-model obligations the
//! checker enforces and how to read a schedule trace, and §17 for the
//! static-analysis rule inventory and annotation grammar.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod analyze;
pub mod lint;
pub mod race;
pub mod strip;
pub mod sync;

#[cfg(cmpi_model)]
mod engine;
#[cfg(cmpi_model)]
pub mod model;
#[cfg(cmpi_model)]
mod vclock;
