//! Shim synchronization layer: the types the hot-path structures use.
//!
//! In a normal build everything here is a zero-cost re-export of
//! `std::sync::atomic` and `parking_lot`. Under `--cfg cmpi_model` the
//! same names become instrumented stand-ins that route every operation
//! through the model checker's scheduler when a model execution is
//! active on the calling thread, and fall back to the embedded real
//! primitive otherwise (so ordinary tests still pass under the cfg).
//!
//! [`CondvarSlot`] packages the mutex+condvar parking idiom the mailbox
//! uses; [`quarantine`] replaces `drop(Box::from_raw(..))` on lock-free
//! node frees so the model can keep freed addresses alive for the rest
//! of the execution (freed-then-reallocated nodes would otherwise alias
//! a stale store history).

pub use std::sync::atomic::Ordering;

#[cfg(not(cmpi_model))]
mod imp {
    pub use parking_lot::{Condvar, Mutex, MutexGuard};
    pub use std::sync::atomic::{
        AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
    };

    /// Reschedule hint; the model build turns this into a scheduler
    /// yield point.
    #[inline]
    pub fn yield_now() {
        std::thread::yield_now();
    }

    /// Free a node popped off a lock-free structure. Plain drop outside
    /// the model.
    #[inline]
    pub fn quarantine<T: Send + 'static>(b: Box<T>) {
        drop(b);
    }
}

#[cfg(cmpi_model)]
mod imp {
    use std::cell::UnsafeCell;
    use std::marker::PhantomData;
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::Ordering;

    use crate::engine;

    #[inline]
    fn model() -> Option<(std::sync::Arc<engine::Execution>, usize)> {
        match engine::current() {
            Some(e) if !std::thread::panicking() => Some(e),
            _ => None,
        }
    }

    macro_rules! int_atomic {
        ($Name:ident, $Prim:ty) => {
            #[derive(Debug)]
            pub struct $Name {
                real: std::sync::atomic::$Name,
            }

            impl $Name {
                pub const fn new(v: $Prim) -> Self {
                    Self {
                        real: std::sync::atomic::$Name::new(v),
                    }
                }

                #[inline]
                fn addr(&self) -> usize {
                    self as *const Self as usize
                }

                #[inline]
                fn init(&self) -> u64 {
                    self.real.load(Ordering::SeqCst) as u64
                }

                pub fn load(&self, ord: Ordering) -> $Prim {
                    match engine::current() {
                        Some((e, tid)) if !std::thread::panicking() => {
                            e.atomic_load(tid, self.addr(), ord, self.init(), stringify!($Name))
                                as $Prim
                        }
                        Some((e, _)) => e.raw_load(self.addr(), self.init()) as $Prim,
                        None => self.real.load(ord),
                    }
                }

                pub fn store(&self, v: $Prim, ord: Ordering) {
                    match engine::current() {
                        Some((e, tid)) if !std::thread::panicking() => e.atomic_store(
                            tid,
                            self.addr(),
                            v as u64,
                            ord,
                            self.init(),
                            stringify!($Name),
                        ),
                        Some((e, _)) => e.raw_store(self.addr(), v as u64, self.init()),
                        None => self.real.store(v, ord),
                    }
                }

                pub fn swap(&self, v: $Prim, ord: Ordering) -> $Prim {
                    match engine::current() {
                        Some((e, tid)) if !std::thread::panicking() => e.atomic_rmw(
                            tid,
                            self.addr(),
                            ord,
                            self.init(),
                            stringify!($Name),
                            &mut |_| v as u64,
                        ) as $Prim,
                        Some((e, _)) => {
                            e.raw_rmw(self.addr(), self.init(), &mut |_| v as u64) as $Prim
                        }
                        None => self.real.swap(v, ord),
                    }
                }

                pub fn fetch_add(&self, v: $Prim, ord: Ordering) -> $Prim {
                    match engine::current() {
                        Some((e, tid)) if !std::thread::panicking() => e.atomic_rmw(
                            tid,
                            self.addr(),
                            ord,
                            self.init(),
                            stringify!($Name),
                            &mut |old| (old as $Prim).wrapping_add(v) as u64,
                        ) as $Prim,
                        Some((e, _)) => e.raw_rmw(self.addr(), self.init(), &mut |old| {
                            (old as $Prim).wrapping_add(v) as u64
                        }) as $Prim,
                        None => self.real.fetch_add(v, ord),
                    }
                }

                pub fn fetch_or(&self, v: $Prim, ord: Ordering) -> $Prim {
                    match engine::current() {
                        Some((e, tid)) if !std::thread::panicking() => e.atomic_rmw(
                            tid,
                            self.addr(),
                            ord,
                            self.init(),
                            stringify!($Name),
                            &mut |old| ((old as $Prim) | v) as u64,
                        ) as $Prim,
                        Some((e, _)) => e.raw_rmw(self.addr(), self.init(), &mut |old| {
                            ((old as $Prim) | v) as u64
                        }) as $Prim,
                        None => self.real.fetch_or(v, ord),
                    }
                }

                pub fn fetch_and(&self, v: $Prim, ord: Ordering) -> $Prim {
                    match engine::current() {
                        Some((e, tid)) if !std::thread::panicking() => e.atomic_rmw(
                            tid,
                            self.addr(),
                            ord,
                            self.init(),
                            stringify!($Name),
                            &mut |old| ((old as $Prim) & v) as u64,
                        ) as $Prim,
                        Some((e, _)) => e.raw_rmw(self.addr(), self.init(), &mut |old| {
                            ((old as $Prim) & v) as u64
                        }) as $Prim,
                        None => self.real.fetch_and(v, ord),
                    }
                }

                pub fn compare_exchange(
                    &self,
                    current: $Prim,
                    new: $Prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$Prim, $Prim> {
                    match engine::current() {
                        Some((e, tid)) if !std::thread::panicking() => e
                            .atomic_cas(
                                tid,
                                self.addr(),
                                current as u64,
                                new as u64,
                                success,
                                failure,
                                self.init(),
                                stringify!($Name),
                            )
                            .map(|v| v as $Prim)
                            .map_err(|v| v as $Prim),
                        Some((e, _)) => {
                            let old = e.raw_load(self.addr(), self.init()) as $Prim;
                            if old == current {
                                e.raw_store(self.addr(), new as u64, self.init());
                                Ok(old)
                            } else {
                                Err(old)
                            }
                        }
                        None => self.real.compare_exchange(current, new, success, failure),
                    }
                }
            }
        };
    }

    int_atomic!(AtomicU8, u8);
    int_atomic!(AtomicU32, u32);
    int_atomic!(AtomicU64, u64);
    int_atomic!(AtomicUsize, usize);

    #[derive(Debug)]
    pub struct AtomicBool {
        real: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self {
                real: std::sync::atomic::AtomicBool::new(v),
            }
        }

        #[inline]
        fn addr(&self) -> usize {
            self as *const Self as usize
        }

        #[inline]
        fn init(&self) -> u64 {
            self.real.load(Ordering::SeqCst) as u64
        }

        pub fn load(&self, ord: Ordering) -> bool {
            match engine::current() {
                Some((e, tid)) if !std::thread::panicking() => {
                    e.atomic_load(tid, self.addr(), ord, self.init(), "AtomicBool") != 0
                }
                Some((e, _)) => e.raw_load(self.addr(), self.init()) != 0,
                None => self.real.load(ord),
            }
        }

        pub fn store(&self, v: bool, ord: Ordering) {
            match engine::current() {
                Some((e, tid)) if !std::thread::panicking() => {
                    e.atomic_store(tid, self.addr(), v as u64, ord, self.init(), "AtomicBool")
                }
                Some((e, _)) => e.raw_store(self.addr(), v as u64, self.init()),
                None => self.real.store(v, ord),
            }
        }

        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            match engine::current() {
                Some((e, tid)) if !std::thread::panicking() => {
                    e.atomic_rmw(
                        tid,
                        self.addr(),
                        ord,
                        self.init(),
                        "AtomicBool",
                        &mut |_| v as u64,
                    ) != 0
                }
                Some((e, _)) => e.raw_rmw(self.addr(), self.init(), &mut |_| v as u64) != 0,
                None => self.real.swap(v, ord),
            }
        }
    }

    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        real: std::sync::atomic::AtomicPtr<T>,
        _marker: PhantomData<*mut T>,
    }

    // SAFETY: the wrapped std AtomicPtr is Send+Sync for any T (it only
    // hands out raw pointers); the PhantomData is there to keep variance
    // honest, not to drop T.
    unsafe impl<T> Send for AtomicPtr<T> {}
    // SAFETY: as above — all access to the pointer value is atomic.
    unsafe impl<T> Sync for AtomicPtr<T> {}

    impl<T> AtomicPtr<T> {
        pub const fn new(p: *mut T) -> Self {
            Self {
                real: std::sync::atomic::AtomicPtr::new(p),
                _marker: PhantomData,
            }
        }

        #[inline]
        fn addr(&self) -> usize {
            self as *const Self as usize
        }

        #[inline]
        fn init(&self) -> u64 {
            self.real.load(Ordering::SeqCst) as usize as u64
        }

        pub fn load(&self, ord: Ordering) -> *mut T {
            match engine::current() {
                Some((e, tid)) if !std::thread::panicking() => {
                    e.atomic_load(tid, self.addr(), ord, self.init(), "AtomicPtr") as usize
                        as *mut T
                }
                Some((e, _)) => e.raw_load(self.addr(), self.init()) as usize as *mut T,
                None => self.real.load(ord),
            }
        }

        pub fn store(&self, p: *mut T, ord: Ordering) {
            match engine::current() {
                Some((e, tid)) if !std::thread::panicking() => e.atomic_store(
                    tid,
                    self.addr(),
                    p as usize as u64,
                    ord,
                    self.init(),
                    "AtomicPtr",
                ),
                Some((e, _)) => e.raw_store(self.addr(), p as usize as u64, self.init()),
                None => self.real.store(p, ord),
            }
        }

        pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
            match engine::current() {
                Some((e, tid)) if !std::thread::panicking() => {
                    e.atomic_rmw(tid, self.addr(), ord, self.init(), "AtomicPtr", &mut |_| {
                        p as usize as u64
                    }) as usize as *mut T
                }
                Some((e, _)) => e.raw_rmw(self.addr(), self.init(), &mut |_| p as usize as u64)
                    as usize as *mut T,
                None => self.real.swap(p, ord),
            }
        }
    }

    /// Model-aware mutex with the `parking_lot` API shape.
    pub struct Mutex<T> {
        raw: parking_lot::Mutex<()>,
        data: UnsafeCell<T>,
    }

    // SAFETY: exclusive access to `data` is enforced either by the model
    // scheduler (one holder recorded per mutex address) or by `raw` in
    // fallback mode; moving the T between threads then only needs T: Send.
    unsafe impl<T: Send> Send for Mutex<T> {}
    // SAFETY: as above — `&Mutex<T>` only exposes `T` through `lock()`.
    unsafe impl<T: Send> Sync for Mutex<T> {}

    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        raw: Option<parking_lot::MutexGuard<'a, ()>>,
    }

    impl<T> Mutex<T> {
        pub const fn new(t: T) -> Self {
            Mutex {
                raw: parking_lot::Mutex::new(()),
                data: UnsafeCell::new(t),
            }
        }

        #[inline]
        fn addr(&self) -> usize {
            self as *const Self as usize
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            match engine::current() {
                Some((e, tid)) if !std::thread::panicking() => {
                    e.mutex_lock(tid, self.addr());
                    MutexGuard {
                        lock: self,
                        raw: None,
                    }
                }
                Some((e, _)) => {
                    e.raw_mutex_lock(self.addr());
                    MutexGuard {
                        lock: self,
                        raw: None,
                    }
                }
                None => MutexGuard {
                    lock: self,
                    raw: Some(self.raw.lock()),
                },
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.data.get_mut()
        }

        pub fn into_inner(self) -> T {
            self.data.into_inner()
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: holding the guard means this thread holds the
            // model (or raw fallback) lock; access is exclusive.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as in Deref — the guard proves exclusive access.
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.raw.is_none() {
                if let Some((e, tid)) = engine::current() {
                    if std::thread::panicking() {
                        e.raw_mutex_unlock(self.lock.addr());
                    } else {
                        e.mutex_unlock(tid, self.lock.addr());
                    }
                }
            }
        }
    }

    /// Model-aware condvar with the `parking_lot` API shape.
    pub struct Condvar {
        real: parking_lot::Condvar,
    }

    impl Condvar {
        pub const fn new() -> Self {
            Condvar {
                real: parking_lot::Condvar::new(),
            }
        }

        #[inline]
        fn addr(&self) -> usize {
            self as *const Self as usize
        }

        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            if guard.raw.is_some() {
                self.real
                    .wait(guard.raw.as_mut().expect("checked raw guard"));
            } else {
                let (e, tid) = engine::current().expect("model guard outside model execution");
                e.cv_wait(tid, self.addr(), guard.lock.addr());
            }
        }

        pub fn notify_all(&self) {
            match model() {
                Some((e, tid)) => e.cv_notify(tid, self.addr(), true),
                None if std::thread::panicking() && engine::current().is_some() => {
                    // Abort teardown: model waiters are woken by the
                    // failure broadcast, nothing to do.
                }
                None => self.real.notify_all(),
            }
        }

        pub fn notify_one(&self) {
            match model() {
                Some((e, tid)) => e.cv_notify(tid, self.addr(), false),
                None if std::thread::panicking() && engine::current().is_some() => {}
                None => self.real.notify_one(),
            }
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    /// Reschedule hint: a scheduler yield point under the model.
    #[inline]
    pub fn yield_now() {
        if let Some((e, tid)) = model() {
            e.yield_now(tid);
        } else {
            std::thread::yield_now();
        }
    }

    /// Free a node popped off a lock-free structure. Under an active
    /// model execution the box is kept alive until the execution ends so
    /// its address is not reused while stale pointers to it may still be
    /// read on other schedules.
    #[inline]
    pub fn quarantine<T: Send + 'static>(b: Box<T>) {
        match engine::current() {
            Some((e, _)) => e.quarantine(b),
            None => drop(b),
        }
    }
}

pub use imp::*;

/// The mailbox parking primitive: a unit mutex plus condvar, packaged so
/// the park/wake protocol reads as intent (`lock → recheck → wait`,
/// `lock → notify`). Works identically in normal and model builds.
pub struct CondvarSlot {
    lock: Mutex<()>,
    cv: Condvar,
}

impl CondvarSlot {
    pub const fn new() -> Self {
        CondvarSlot {
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Take the park lock; flag rechecks and the wait happen under it.
    pub fn lock(&self) -> MutexGuard<'_, ()> {
        self.lock.lock()
    }

    /// Wait on the condvar, releasing and re-acquiring the park lock.
    pub fn wait(&self, guard: &mut MutexGuard<'_, ()>) {
        self.cv.wait(guard);
    }

    /// Wake every parked waiter. Callers serialize against the waiter's
    /// recheck by taking the park lock first (see mailbox `wake`).
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

impl Default for CondvarSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CondvarSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CondvarSlot").finish_non_exhaustive()
    }
}
