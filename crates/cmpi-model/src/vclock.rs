//! Vector clocks for the model checker's happens-before tracking.

/// A vector clock over model-thread ids. Component `t` is the number of
/// events thread `t` had performed when this clock was snapshotted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    /// The clock component for thread `t` (0 when never ticked).
    pub(crate) fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Advance this thread's own component by one event.
    pub(crate) fn tick(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    /// Pointwise maximum (the happens-before join).
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// `self ⊑ other`: every event this clock knows of, `other` knows too.
    pub(crate) fn leq(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }

    /// True when no component has ever ticked (the initial clock, which
    /// happens-before everything).
    pub(crate) fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_leq() {
        let mut a = VClock::default();
        let mut b = VClock::default();
        assert!(a.leq(&b) && b.leq(&a));
        a.tick(0);
        assert!(!a.leq(&b) && b.leq(&a));
        b.tick(1);
        assert!(!a.leq(&b) && !b.leq(&a));
        b.join(&a);
        assert!(a.leq(&b));
        assert_eq!(b.get(0), 1);
        assert_eq!(b.get(1), 1);
        assert!(!b.is_zero());
        assert!(VClock::default().is_zero());
    }
}
