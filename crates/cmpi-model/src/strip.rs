//! Shared syntax-aware source stripper and token lexer.
//!
//! Both the line-based repo lint ([`crate::lint`]) and the whole-program
//! analyzer ([`crate::analyze`]) need the same primitive: tell code
//! apart from comments and literal contents without being fooled by
//! `"unsafe {"` inside a string, `//` inside a raw string, nested block
//! comments, or `r#"…"#` literals spanning macro invocations. The seed
//! lint carried a line-local approximation with two known blind spots
//! (nested `/* /* */ */` and raw strings inside macros); this module
//! replaces it with a real lexer over the whole file.
//!
//! Guarantees (property-tested in `tests/lexer_props.rs`):
//!
//! * [`lex`] never panics, on any input, including non-UTF-8-looking
//!   byte soups that survived `String` conversion and unterminated
//!   literals or comments.
//! * Token byte offsets are strictly monotone: for consecutive tokens
//!   `a`, `b`: `a.start < a.end <= b.start`, and every offset lies on a
//!   `char` boundary within the source.
//! * [`strip_source`] preserves byte length and line structure exactly:
//!   output length equals input length and every `\n` stays in place,
//!   so line/column positions computed on the stripped text are valid
//!   for the original.

/// Kind of one lexed token. Comments are not tokens — their spans are
/// reported separately by [`lex_full`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// Lifetime such as `'a` (the quote plus the name).
    Lifetime,
    /// Numeric literal (integers, floats, and their suffixed forms).
    Num,
    /// String-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Any other single non-whitespace character.
    Punct,
}

/// One token with its byte span and 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || !c.is_ascii()
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || !c.is_ascii()
}

/// Lex `src` into tokens plus the byte spans of every comment
/// (line comments exclude the trailing newline; block comments nest).
/// Unterminated literals and comments extend to end of input rather
/// than failing.
pub fn lex_full(src: &str) -> (Vec<Tok>, Vec<(usize, usize)>) {
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let n = chars.len();
    let total = src.len();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Byte offset one past chars[k], i.e. the start of chars[k + 1].
    let end_of = |k: usize| -> usize {
        if k + 1 < n {
            chars[k + 1].0
        } else {
            total
        }
    };

    while i < n {
        let (at, c) = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            let c1 = chars[i + 1].1;
            if c1 == '/' {
                let mut j = i + 2;
                while j < n && chars[j].1 != '\n' {
                    j += 1;
                }
                comments.push((at, if j < n { chars[j].0 } else { total }));
                i = j;
                continue;
            }
            if c1 == '*' {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if chars[j].1 == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j].1 == '/' && j + 1 < n && chars[j + 1].1 == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j].1 == '*' && j + 1 < n && chars[j + 1].1 == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                comments.push((at, if j < n { chars[j].0 } else { total }));
                i = j;
                continue;
            }
        }
        // Raw strings / byte strings / raw identifiers, all led by `r`
        // or `b` prefixes.
        if c == 'r' || c == 'b' {
            let has_r = c == 'r' || (i + 1 < n && chars[i + 1].1 == 'r');
            let after_prefix = if c == 'b' && has_r { i + 2 } else { i + 1 };
            if has_r {
                // Count `#`s, then require `"` for a raw string.
                let mut hashes = 0usize;
                let mut k = after_prefix;
                while k < n && chars[k].1 == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k].1 == '"' {
                    // Raw (byte) string r"…", r#"…"#, br#"…"#: no escape
                    // processing; closes on `"` followed by `hashes` #s.
                    let start_line = line;
                    let mut m = k + 1;
                    let close = loop {
                        if m >= n {
                            break n;
                        }
                        if chars[m].1 == '\n' {
                            line += 1;
                            m += 1;
                            continue;
                        }
                        if chars[m].1 == '"' {
                            let mut h = 0usize;
                            while h < hashes && m + 1 + h < n && chars[m + 1 + h].1 == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                break m + hashes;
                            }
                        }
                        m += 1;
                    };
                    let end = if close < n { end_of(close) } else { total };
                    toks.push(Tok {
                        kind: TokKind::Str,
                        start: at,
                        end,
                        line: start_line,
                    });
                    i = close + 1;
                    continue;
                }
                if c == 'r' && hashes >= 1 && k < n && is_ident_start(chars[k].1) {
                    // Raw identifier r#ident.
                    let mut m = k;
                    while m < n && is_ident_continue(chars[m].1) {
                        m += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        start: at,
                        end: end_of(m - 1),
                        line,
                    });
                    i = m;
                    continue;
                }
            }
            if c == 'b' && i + 1 < n && chars[i + 1].1 == '\'' {
                // Byte literal b'x'.
                let (end_idx, end) = scan_quoted(&chars, i + 1, total, &mut line);
                toks.push(Tok {
                    kind: TokKind::Char,
                    start: at,
                    end,
                    line,
                });
                i = end_idx;
                continue;
            }
            if c == 'b' && i + 1 < n && chars[i + 1].1 == '"' {
                // Byte string b"…": escapes apply, unlike raw forms.
                let start_line = line;
                let (end_idx, end) = scan_string(&chars, i + 1, total, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    start: at,
                    end,
                    line: start_line,
                });
                i = end_idx;
                continue;
            }
            // Plain identifier starting with r/b.
            let mut m = i;
            while m < n && is_ident_continue(chars[m].1) {
                m += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                start: at,
                end: end_of(m - 1),
                line,
            });
            i = m;
            continue;
        }
        if c == '"' {
            let start_line = line;
            let (end_idx, end) = scan_string(&chars, i, total, &mut line);
            toks.push(Tok {
                kind: TokKind::Str,
                start: at,
                end,
                line: start_line,
            });
            i = end_idx;
            continue;
        }
        if c == '\'' {
            // Lifetime vs char literal. `'\…'` and `'x'` are chars;
            // `'ident` with no closing quote right after is a lifetime.
            let next_is_escape = i + 1 < n && chars[i + 1].1 == '\\';
            let closes_as_char = i + 2 < n && chars[i + 2].1 == '\'' && chars[i + 1].1 != '\'';
            if next_is_escape || closes_as_char {
                let (end_idx, end) = scan_quoted(&chars, i, total, &mut line);
                toks.push(Tok {
                    kind: TokKind::Char,
                    start: at,
                    end,
                    line,
                });
                i = end_idx;
                continue;
            }
            if i + 1 < n && is_ident_start(chars[i + 1].1) {
                let mut m = i + 1;
                while m < n && is_ident_continue(chars[m].1) {
                    m += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    start: at,
                    end: if m > 0 { end_of(m - 1) } else { total },
                    line,
                });
                i = m;
                continue;
            }
            toks.push(Tok {
                kind: TokKind::Punct,
                start: at,
                end: end_of(i),
                line,
            });
            i += 1;
            continue;
        }
        if is_ident_start(c) {
            let mut m = i;
            while m < n && is_ident_continue(chars[m].1) {
                m += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                start: at,
                end: end_of(m - 1),
                line,
            });
            i = m;
            continue;
        }
        if c.is_ascii_digit() {
            let mut m = i;
            while m < n
                && (is_ident_continue(chars[m].1)
                    || (chars[m].1 == '.'
                        && m + 1 < n
                        && chars[m + 1].1.is_ascii_digit()
                        && m > i
                        && src.as_bytes().get(chars[m].0.wrapping_sub(1)) != Some(&b'.')))
            {
                m += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                start: at,
                end: end_of(m - 1),
                line,
            });
            i = m;
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            start: at,
            end: end_of(i),
            line,
        });
        i += 1;
    }
    (toks, comments)
}

/// Scan a `"…"` string starting at `chars[i]` (the opening quote).
/// Returns (index one past the closing quote, byte end offset).
fn scan_string(
    chars: &[(usize, char)],
    i: usize,
    total: usize,
    line: &mut usize,
) -> (usize, usize) {
    let n = chars.len();
    let mut m = i + 1;
    while m < n {
        match chars[m].1 {
            '\\' => {
                if m + 1 < n && chars[m + 1].1 == '\n' {
                    *line += 1;
                }
                m += 2;
            }
            '\n' => {
                *line += 1;
                m += 1;
            }
            '"' => {
                return (m + 1, if m + 1 < n { chars[m + 1].0 } else { total });
            }
            _ => m += 1,
        }
    }
    (n, total)
}

/// Scan a `'…'` char/byte literal starting at `chars[i]` (the opening
/// quote). Returns (index one past the closing quote, byte end offset).
fn scan_quoted(
    chars: &[(usize, char)],
    i: usize,
    total: usize,
    line: &mut usize,
) -> (usize, usize) {
    let n = chars.len();
    let mut m = i + 1;
    while m < n {
        match chars[m].1 {
            '\\' => {
                if m + 1 < n && chars[m + 1].1 == '\n' {
                    *line += 1;
                }
                m += 2;
            }
            '\n' => {
                *line += 1;
                m += 1;
            }
            '\'' => {
                return (m + 1, if m + 1 < n { chars[m + 1].0 } else { total });
            }
            _ => m += 1,
        }
    }
    (n, total)
}

/// Lex `src` into code tokens (comments skipped).
pub fn lex(src: &str) -> Vec<Tok> {
    lex_full(src).0
}

/// A copy of `src` with the same byte length and line structure in
/// which every comment byte and every string/char literal *content*
/// byte is replaced by a space. String literals keep a `"…"` husk
/// (first and last byte) so stripped code still reads as code;
/// everything that could confuse a token search is gone.
pub fn strip_source(src: &str) -> String {
    let (toks, comments) = lex_full(src);
    let mut out: Vec<u8> = src.as_bytes().to_vec();
    let blank = |out: &mut Vec<u8>, lo: usize, hi: usize| {
        for b in &mut out[lo..hi] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    for &(lo, hi) in &comments {
        blank(&mut out, lo, hi);
    }
    for t in &toks {
        match t.kind {
            TokKind::Str => {
                blank(&mut out, t.start, t.end);
                out[t.start] = b'"';
                if t.end > t.start + 1 {
                    out[t.end - 1] = b'"';
                }
            }
            TokKind::Char => {
                blank(&mut out, t.start, t.end);
                out[t.start] = b'\'';
                if t.end > t.start + 1 {
                    out[t.end - 1] = b'\'';
                }
            }
            _ => {}
        }
    }
    // SAFETY-free by construction: only ASCII bytes were written, and
    // multi-byte chars are either untouched or fully blanked.
    String::from_utf8(out).unwrap_or_else(|e| {
        // Unreachable in practice; keep total robustness anyway.
        String::from_utf8_lossy(e.as_bytes()).into_owned()
    })
}

/// The comment- and literal-stripped lines of `src`, parallel to
/// `src.lines()`. The line count always matches.
pub fn code_lines(src: &str) -> Vec<String> {
    strip_source(src).lines().map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_plain_code() {
        let toks = lex("fn f(x: u32) -> u32 { x + 1 }");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text("fn f(x: u32) -> u32 { x + 1 }"))
            .collect();
        assert_eq!(idents, vec!["fn", "f", "x", "u32", "u32", "x"]);
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let src = "a /* outer /* inner */ still comment */ b";
        let (toks, comments) = lex_full(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(comments.len(), 1);
        let stripped = strip_source(src);
        assert!(!stripped.contains("comment"));
        assert!(stripped.starts_with('a') && stripped.ends_with('b'));
    }

    #[test]
    fn nested_block_comment_hides_unsafe_across_lines() {
        let src = "/* outer /* unsafe */\nstill unsafe comment */\nfn f() {}\n";
        let lines = code_lines(src);
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].contains("unsafe"));
        assert!(!lines[1].contains("unsafe"));
        assert!(lines[2].contains("fn f"));
    }

    #[test]
    fn raw_string_inside_macro_is_stripped() {
        let src = "println!(r#\"unsafe { \"quoted\" } // not a comment\"#); x";
        let stripped = strip_source(src);
        assert!(!stripped.contains("unsafe"));
        assert!(!stripped.contains("not a comment"));
        assert!(stripped.contains('x'));
        assert_eq!(stripped.len(), src.len());
    }

    #[test]
    fn multiline_raw_string_blanks_every_line() {
        let src = "let s = r#\"line one unsafe\nline two // junk\n\"#;\nlet y = 1;";
        let lines = code_lines(src);
        assert_eq!(lines.len(), 4);
        assert!(!lines[0].contains("unsafe"));
        assert!(!lines[1].contains("junk"));
        assert!(lines[3].contains("let y"));
    }

    #[test]
    fn char_and_lifetime_disambiguation() {
        assert_eq!(
            kinds("'a', 'b'"),
            vec![TokKind::Char, TokKind::Punct, TokKind::Char]
        );
        let toks = lex("fn f<'a>(x: &'a str) {}");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(kinds("'\\n'"), vec![TokKind::Char]);
        // A quote char literal.
        assert_eq!(kinds("'\\''"), vec![TokKind::Char]);
    }

    #[test]
    fn byte_and_raw_identifier_forms() {
        assert_eq!(kinds("b'x'"), vec![TokKind::Char]);
        assert_eq!(kinds("b\"bytes\""), vec![TokKind::Str]);
        assert_eq!(kinds("br#\"raw bytes\"#"), vec![TokKind::Str]);
        let toks = lex("r#fn");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokKind::Ident);
    }

    #[test]
    fn line_comments_and_doc_comments_are_comments() {
        let src = "//! module doc unsafe\n/// item doc unsafe\ncode();";
        let stripped = strip_source(src);
        assert!(!stripped.contains("unsafe"));
        assert!(stripped.contains("code"));
    }

    #[test]
    fn unterminated_forms_reach_eof_without_panic() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed /* nested",
            "'",
            "b'",
            "r#",
            "let x = \"\\",
        ] {
            let (toks, _) = lex_full(src);
            for w in toks.windows(2) {
                assert!(w[0].end <= w[1].start);
            }
            assert_eq!(strip_source(src).len(), src.len());
        }
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline\"\nb /* c\nd */ e\nf";
        let toks = lex(src);
        let by_text: Vec<(&str, usize)> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text(src), t.line))
            .collect();
        assert_eq!(by_text, vec![("a", 1), ("b", 4), ("e", 5), ("f", 6)]);
    }

    #[test]
    fn strip_preserves_length_and_lines() {
        let src = "let s = \"a\\\"b\"; /* x\ny */ let c = 'q'; // tail\n";
        let stripped = strip_source(src);
        assert_eq!(stripped.len(), src.len());
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert!(stripped.contains("let s = \""));
        assert!(!stripped.contains("tail"));
    }
}
