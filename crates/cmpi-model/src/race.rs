//! Race-detector hooks for non-atomic data reached through lock-free
//! protocols (mailbox node payloads, shared-segment plain fields).
//!
//! In a normal build these compile to nothing. Under `--cfg cmpi_model`
//! with a model execution active, each hook records a FastTrack-style
//! epoch in per-address shadow memory and fails the execution when two
//! accesses (at least one a write) from different threads are not
//! ordered by happens-before — exactly the condition under which the
//! annotated plain access would be undefined behavior on real hardware.
//!
//! Call `write` for any access that mutates or takes exclusive ownership
//! (initialization, `Option::take`, freeing); `read` for shared reads.

/// Record a happens-before-checked *read* of the plain data at `p`.
#[cfg(not(cmpi_model))]
#[inline(always)]
pub fn read<T>(_p: *const T, _label: &'static str) {}

/// Record a happens-before-checked *write* (or exclusive claim) of the
/// plain data at `p`.
#[cfg(not(cmpi_model))]
#[inline(always)]
pub fn write<T>(_p: *const T, _label: &'static str) {}

#[cfg(cmpi_model)]
pub fn read<T>(p: *const T, label: &'static str) {
    if std::thread::panicking() {
        return;
    }
    if let Some((e, tid)) = crate::engine::current() {
        e.race_access(tid, p as usize, false, label);
    }
}

#[cfg(cmpi_model)]
pub fn write<T>(p: *const T, label: &'static str) {
    if std::thread::panicking() {
        return;
    }
    if let Some((e, tid)) = crate::engine::current() {
        e.race_access(tid, p as usize, true, label);
    }
}
