//! The model-checking engine (compiled only under `cfg(cmpi_model)`).
//!
//! One [`Execution`] is a single explored interleaving. Model threads are
//! real OS threads, but exactly one runs at a time: every shim operation
//! is a *schedule point* where the scheduler may hand the baton to
//! another runnable thread (bounded preemption) before the op commits
//! under the global execution lock.
//!
//! Weak memory is modeled with per-location store histories: a load may
//! read any store not forbidden by coherence (per-thread floor), by
//! happens-before (a newer store already visible to the reader), or by
//! the SC order (for `SeqCst` accesses). Release/acquire edges join
//! vector clocks only on a reads-from pairing of a releasing store and an
//! acquiring load; RMWs always read the newest store and carry the
//! previous message clock forward (release sequences).
//!
//! The explorer is a DFS over recorded choice points (thread switches and
//! which store a load reads). On failure the exact schedule is re-run
//! with tracing enabled and a replayable choice string is printed.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::{Arc, Once};

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::vclock::VClock;

/// Panic payload used to tear model threads down after a failure was
/// recorded; never reported as a failure itself.
struct ModelAbort;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Block {
    Mutex(usize),
    Cv(usize),
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked(Block),
    Finished,
}

struct ThreadState {
    state: Run,
    clock: VClock,
}

/// One committed store to an atomic location.
struct Store {
    val: u64,
    /// Clock an acquiring reader joins (zero for relaxed stores; carries
    /// the release-sequence head through RMW chains).
    msg: VClock,
    /// Clock of the store event itself (for visibility floors).
    event: VClock,
}

struct AtomicLoc {
    stores: Vec<Store>,
    /// Per-thread coherence floor: index of the newest store each thread
    /// has observed (reads may never go backwards).
    seen: Vec<usize>,
    last_sc: Option<usize>,
}

impl AtomicLoc {
    fn new(init: u64) -> Self {
        AtomicLoc {
            stores: vec![Store {
                val: init,
                msg: VClock::default(),
                event: VClock::default(),
            }],
            seen: Vec::new(),
            last_sc: None,
        }
    }

    fn seen_floor(&mut self, tid: usize) -> usize {
        if self.seen.len() <= tid {
            self.seen.resize(tid + 1, 0);
        }
        self.seen[tid]
    }

    fn set_seen(&mut self, tid: usize, idx: usize) {
        if self.seen.len() <= tid {
            self.seen.resize(tid + 1, 0);
        }
        self.seen[tid] = idx;
    }
}

/// FastTrack-style shadow word for one non-atomic location.
struct Shadow {
    /// Last write epoch: (writer tid, writer clock component at write).
    write: Option<(usize, u32, &'static str)>,
    /// Per-thread read epochs since the last write.
    reads: Vec<Option<(u32, &'static str)>>,
}

#[derive(Default)]
struct MutexState {
    holder: Option<usize>,
    clock: VClock,
}

/// One recorded nondeterministic decision: a thread switch at an op
/// boundary, or which store a load reads (option 0 is always the
/// default: stay on the current thread / read the newest store).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub options: usize,
    pub chosen: usize,
}

pub(crate) struct Options {
    pub max_executions: usize,
    pub preemption_bound: usize,
    pub max_steps: usize,
    pub max_threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_executions: 50_000,
            preemption_bound: 2,
            max_steps: 10_000,
            max_threads: 4,
        }
    }
}

struct Inner {
    threads: Vec<ThreadState>,
    current: usize,
    live: usize,
    done: bool,
    atomics: HashMap<usize, AtomicLoc>,
    shadows: HashMap<usize, Shadow>,
    mutexes: HashMap<usize, MutexState>,
    cvs: HashMap<usize, Vec<usize>>,
    prefix: Vec<usize>,
    cursor: usize,
    log: Vec<Choice>,
    steps: usize,
    preemptions: usize,
    failure: Option<String>,
    aborting: bool,
    trace_on: bool,
    trace_lines: Vec<String>,
    graveyard: Vec<Box<dyn Any + Send>>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    opts_preemption_bound: usize,
    opts_max_steps: usize,
    opts_max_threads: usize,
}

impl Inner {
    fn decide(&mut self, options: usize) -> usize {
        debug_assert!(options >= 1, "decision with no options");
        let chosen = if self.cursor < self.prefix.len() {
            let c = self.prefix[self.cursor];
            assert!(
                c < options,
                "cmpi-model internal error: replay diverged at choice #{} ({c} of {options})",
                self.cursor
            );
            c
        } else {
            0
        };
        self.log.push(Choice { options, chosen });
        self.cursor += 1;
        chosen
    }

    fn tr(&mut self, tid: usize, msg: impl FnOnce() -> String) {
        if self.trace_on {
            let step = self.steps;
            self.trace_lines
                .push(format!("#{step:<4} T{tid} {}", msg()));
        }
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| matches!(self.threads[t].state, Run::Runnable))
            .collect()
    }
}

pub(crate) struct Execution {
    m: Mutex<Inner>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
    static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The execution the calling OS thread belongs to, if any.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

static HOOK_INIT: Once = Once::new();

/// Model-thread panics are caught and turned into failure reports; keep
/// the default hook from spamming stderr with expected unwinds.
fn install_hook() {
    HOOK_INIT.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(|c| c.get()) {
                return;
            }
            default(info);
        }));
    });
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn acq(ord: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(ord, Acquire | AcqRel | SeqCst)
}

fn rel(ord: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(ord, Release | AcqRel | SeqCst)
}

fn sc(ord: std::sync::atomic::Ordering) -> bool {
    matches!(ord, std::sync::atomic::Ordering::SeqCst)
}

impl Execution {
    fn new(opts: &Options, prefix: Vec<usize>, trace_on: bool) -> Self {
        Execution {
            m: Mutex::new(Inner {
                threads: Vec::new(),
                current: 0,
                live: 0,
                done: false,
                atomics: HashMap::new(),
                shadows: HashMap::new(),
                mutexes: HashMap::new(),
                cvs: HashMap::new(),
                prefix,
                cursor: 0,
                log: Vec::new(),
                steps: 0,
                preemptions: 0,
                failure: None,
                aborting: false,
                trace_on,
                trace_lines: Vec::new(),
                graveyard: Vec::new(),
                os_handles: Vec::new(),
                opts_preemption_bound: opts.preemption_bound,
                opts_max_steps: opts.max_steps,
                opts_max_threads: opts.max_threads,
            }),
            cv: Condvar::new(),
        }
    }

    fn abort_check(&self, g: &Inner) {
        if g.aborting {
            panic_any(ModelAbort);
        }
    }

    fn fail(&self, g: &mut Inner, msg: String) {
        if g.failure.is_none() {
            g.failure = Some(msg);
        }
        g.aborting = true;
        self.cv.notify_all();
    }

    /// Pick which thread runs next. With `voluntary` (the current thread
    /// blocked, finished, or yielded) any runnable thread may be chosen
    /// for free; otherwise staying put is option 0 and switching costs
    /// one preemption.
    fn pick_next(&self, g: &mut Inner, voluntary: bool) {
        if g.aborting {
            return;
        }
        let runnable = g.runnable();
        if runnable.is_empty() {
            if g.live == 0 {
                return;
            }
            let mut msg = String::from("lost wakeup / deadlock: every live thread is blocked:\n");
            for (t, th) in g.threads.iter().enumerate() {
                if !matches!(th.state, Run::Finished) {
                    msg.push_str(&format!("  T{t}: {:?}\n", th.state));
                }
            }
            self.fail(g, msg);
            return;
        }
        let cur_runnable = g
            .threads
            .get(g.current)
            .map(|t| matches!(t.state, Run::Runnable))
            .unwrap_or(false);
        if voluntary || !cur_runnable {
            let c = g.decide(runnable.len());
            g.current = runnable[c];
        } else {
            let others: Vec<usize> = runnable
                .iter()
                .copied()
                .filter(|&t| t != g.current)
                .collect();
            let options = if g.preemptions < g.opts_preemption_bound {
                1 + others.len()
            } else {
                1
            };
            let c = g.decide(options);
            if c > 0 {
                g.preemptions += 1;
                g.current = others[c - 1];
            }
        }
        self.cv.notify_all();
    }

    fn wait_for_baton<'a>(
        &'a self,
        mut g: MutexGuard<'a, Inner>,
        tid: usize,
    ) -> MutexGuard<'a, Inner> {
        loop {
            if g.aborting {
                drop(g);
                panic_any(ModelAbort);
            }
            if g.current == tid && matches!(g.threads[tid].state, Run::Runnable) {
                return g;
            }
            self.cv.wait(&mut g);
        }
    }

    /// Account one step, offer the scheduler a switch, and return with
    /// the global lock held and this thread scheduled.
    fn op_gate(&self, tid: usize) -> MutexGuard<'_, Inner> {
        let mut g = self.m.lock();
        self.abort_check(&g);
        g.steps += 1;
        if g.steps > g.opts_max_steps {
            let bound = g.opts_max_steps;
            self.fail(
                &mut g,
                format!("step bound {bound} exceeded: livelock or runaway retry loop"),
            );
            drop(g);
            panic_any(ModelAbort);
        }
        self.pick_next(&mut g, false);
        self.wait_for_baton(g, tid)
    }

    // ---- atomics ---------------------------------------------------

    pub(crate) fn atomic_load(
        self: &Arc<Self>,
        tid: usize,
        addr: usize,
        ord: std::sync::atomic::Ordering,
        init: u64,
        label: &'static str,
    ) -> u64 {
        let mut g = self.op_gate(tid);
        g.threads[tid].clock.tick(tid);
        let clock = g.threads[tid].clock.clone();
        let (floor, len) = {
            let loc = g
                .atomics
                .entry(addr)
                .or_insert_with(|| AtomicLoc::new(init));
            let mut floor = loc.seen_floor(tid);
            if sc(ord) {
                if let Some(i) = loc.last_sc {
                    floor = floor.max(i);
                }
            }
            for i in (floor..loc.stores.len()).rev() {
                if loc.stores[i].event.leq(&clock) {
                    floor = floor.max(i);
                    break;
                }
            }
            (floor, loc.stores.len())
        };
        let cands = len - floor;
        let idx = if cands > 1 {
            let c = g.decide(cands);
            len - 1 - c
        } else {
            floor
        };
        let (val, join_msg) = {
            let loc = g.atomics.get_mut(&addr).expect("registered above");
            let st = &loc.stores[idx];
            let join = if acq(ord) && !st.msg.is_zero() {
                Some(st.msg.clone())
            } else {
                None
            };
            let val = st.val;
            // Fairness bound: a stale (non-newest) store may be read only
            // once per visit — the floor advances past it so a retry loop
            // must make progress. This prunes behaviors where the same
            // stale value is observed twice consecutively (harmless for
            // bug finding, essential for DFS termination on spin loops).
            let floor_after = if idx + 1 < len { idx + 1 } else { idx };
            loc.set_seen(tid, floor_after);
            (val, join)
        };
        if let Some(m) = join_msg {
            g.threads[tid].clock.join(&m);
        }
        g.tr(tid, || {
            format!("load  {label}@{addr:#x} -> {val} ({ord:?}, store #{idx}/{len})")
        });
        val
    }

    pub(crate) fn atomic_store(
        self: &Arc<Self>,
        tid: usize,
        addr: usize,
        val: u64,
        ord: std::sync::atomic::Ordering,
        init: u64,
        label: &'static str,
    ) {
        let mut g = self.op_gate(tid);
        g.threads[tid].clock.tick(tid);
        let clock = g.threads[tid].clock.clone();
        let loc = g
            .atomics
            .entry(addr)
            .or_insert_with(|| AtomicLoc::new(init));
        let msg = if rel(ord) {
            clock.clone()
        } else {
            VClock::default()
        };
        loc.stores.push(Store {
            val,
            msg,
            event: clock,
        });
        let idx = loc.stores.len() - 1;
        if sc(ord) {
            loc.last_sc = Some(idx);
        }
        loc.set_seen(tid, idx);
        g.tr(tid, || {
            format!("store {label}@{addr:#x} <- {val} ({ord:?})")
        });
    }

    /// RMW: always reads the newest store; the new store's message clock
    /// carries the previous one forward (release sequences survive
    /// relaxed RMW links).
    pub(crate) fn atomic_rmw(
        self: &Arc<Self>,
        tid: usize,
        addr: usize,
        ord: std::sync::atomic::Ordering,
        init: u64,
        label: &'static str,
        f: &mut dyn FnMut(u64) -> u64,
    ) -> u64 {
        let mut g = self.op_gate(tid);
        g.threads[tid].clock.tick(tid);
        let (old, prev_msg) = {
            let loc = g
                .atomics
                .entry(addr)
                .or_insert_with(|| AtomicLoc::new(init));
            let last = loc.stores.last().expect("history never empty");
            (last.val, last.msg.clone())
        };
        if acq(ord) && !prev_msg.is_zero() {
            g.threads[tid].clock.join(&prev_msg);
        }
        let newv = f(old);
        let clock = g.threads[tid].clock.clone();
        let mut msg = prev_msg;
        if rel(ord) {
            msg.join(&clock);
        }
        let loc = g.atomics.get_mut(&addr).expect("registered above");
        loc.stores.push(Store {
            val: newv,
            msg,
            event: clock,
        });
        let idx = loc.stores.len() - 1;
        if sc(ord) {
            loc.last_sc = Some(idx);
        }
        loc.set_seen(tid, idx);
        g.tr(tid, || {
            format!("rmw   {label}@{addr:#x} {old} -> {newv} ({ord:?})")
        });
        old
    }

    pub(crate) fn atomic_cas(
        self: &Arc<Self>,
        tid: usize,
        addr: usize,
        expect: u64,
        new: u64,
        succ: std::sync::atomic::Ordering,
        fail: std::sync::atomic::Ordering,
        init: u64,
        label: &'static str,
    ) -> Result<u64, u64> {
        let mut g = self.op_gate(tid);
        g.threads[tid].clock.tick(tid);
        let (old, prev_msg, len) = {
            let loc = g
                .atomics
                .entry(addr)
                .or_insert_with(|| AtomicLoc::new(init));
            let last = loc.stores.last().expect("history never empty");
            (last.val, last.msg.clone(), loc.stores.len())
        };
        if old == expect {
            if acq(succ) && !prev_msg.is_zero() {
                g.threads[tid].clock.join(&prev_msg);
            }
            let clock = g.threads[tid].clock.clone();
            let mut msg = prev_msg;
            if rel(succ) {
                msg.join(&clock);
            }
            let loc = g.atomics.get_mut(&addr).expect("registered above");
            loc.stores.push(Store {
                val: new,
                msg,
                event: clock,
            });
            let idx = loc.stores.len() - 1;
            if sc(succ) {
                loc.last_sc = Some(idx);
            }
            loc.set_seen(tid, idx);
            g.tr(tid, || {
                format!("cas   {label}@{addr:#x} {old} -> {new} ok ({succ:?})")
            });
            Ok(old)
        } else {
            if acq(fail) && !prev_msg.is_zero() {
                g.threads[tid].clock.join(&prev_msg);
            }
            let loc = g.atomics.get_mut(&addr).expect("registered above");
            loc.set_seen(tid, len - 1);
            g.tr(tid, || {
                format!("cas   {label}@{addr:#x} found {old}, wanted {expect}: failed")
            });
            Err(old)
        }
    }

    // ---- raw (teardown / unwind) access ----------------------------

    /// Latest-value access without scheduling, used while the thread is
    /// panicking (Drop impls during an abort teardown must not re-enter
    /// the scheduler or double-panic).
    pub(crate) fn raw_load(&self, addr: usize, init: u64) -> u64 {
        let mut g = self.m.lock();
        let loc = g
            .atomics
            .entry(addr)
            .or_insert_with(|| AtomicLoc::new(init));
        loc.stores.last().expect("history never empty").val
    }

    pub(crate) fn raw_store(&self, addr: usize, val: u64, init: u64) {
        let mut g = self.m.lock();
        let loc = g
            .atomics
            .entry(addr)
            .or_insert_with(|| AtomicLoc::new(init));
        loc.stores.push(Store {
            val,
            msg: VClock::default(),
            event: VClock::default(),
        });
    }

    pub(crate) fn raw_rmw(&self, addr: usize, init: u64, f: &mut dyn FnMut(u64) -> u64) -> u64 {
        let mut g = self.m.lock();
        let loc = g
            .atomics
            .entry(addr)
            .or_insert_with(|| AtomicLoc::new(init));
        let old = loc.stores.last().expect("history never empty").val;
        loc.stores.push(Store {
            val: f(old),
            msg: VClock::default(),
            event: VClock::default(),
        });
        old
    }

    pub(crate) fn raw_mutex_lock(&self, addr: usize) {
        loop {
            {
                let mut g = self.m.lock();
                let m = g.mutexes.entry(addr).or_default();
                if m.holder.is_none() {
                    m.holder = Some(usize::MAX);
                    return;
                }
            }
            std::thread::yield_now();
        }
    }

    pub(crate) fn raw_mutex_unlock(&self, addr: usize) {
        let mut g = self.m.lock();
        if let Some(m) = g.mutexes.get_mut(&addr) {
            m.holder = None;
        }
        for t in 0..g.threads.len() {
            if g.threads[t].state == Run::Blocked(Block::Mutex(addr)) {
                g.threads[t].state = Run::Runnable;
            }
        }
        self.cv.notify_all();
    }

    // ---- mutex / condvar -------------------------------------------

    pub(crate) fn mutex_lock(self: &Arc<Self>, tid: usize, addr: usize) {
        let mut g = self.op_gate(tid);
        loop {
            let free = g.mutexes.entry(addr).or_default().holder.is_none();
            if free {
                let mc = {
                    let m = g.mutexes.get_mut(&addr).expect("registered above");
                    m.holder = Some(tid);
                    m.clock.clone()
                };
                g.threads[tid].clock.join(&mc);
                g.threads[tid].clock.tick(tid);
                g.tr(tid, || format!("lock  mutex@{addr:#x}"));
                return;
            }
            g.threads[tid].state = Run::Blocked(Block::Mutex(addr));
            g.tr(tid, || format!("block mutex@{addr:#x}"));
            self.pick_next(&mut g, true);
            g = self.wait_for_baton(g, tid);
        }
    }

    pub(crate) fn mutex_unlock(self: &Arc<Self>, tid: usize, addr: usize) {
        let mut g = self.op_gate(tid);
        g.threads[tid].clock.tick(tid);
        let c = g.threads[tid].clock.clone();
        {
            let m = g.mutexes.get_mut(&addr).expect("unlock of unknown mutex");
            debug_assert_eq!(m.holder, Some(tid), "unlock by non-holder");
            m.holder = None;
            m.clock.join(&c);
        }
        for t in 0..g.threads.len() {
            if g.threads[t].state == Run::Blocked(Block::Mutex(addr)) {
                g.threads[t].state = Run::Runnable;
            }
        }
        g.tr(tid, || format!("unlck mutex@{addr:#x}"));
    }

    pub(crate) fn cv_wait(self: &Arc<Self>, tid: usize, cv_addr: usize, mutex_addr: usize) {
        let mut g = self.op_gate(tid);
        g.threads[tid].clock.tick(tid);
        let c = g.threads[tid].clock.clone();
        {
            let m = g
                .mutexes
                .get_mut(&mutex_addr)
                .expect("cv wait with unlocked mutex");
            debug_assert_eq!(m.holder, Some(tid), "cv wait by non-holder");
            m.holder = None;
            m.clock.join(&c);
        }
        for t in 0..g.threads.len() {
            if g.threads[t].state == Run::Blocked(Block::Mutex(mutex_addr)) {
                g.threads[t].state = Run::Runnable;
            }
        }
        g.cvs.entry(cv_addr).or_default().push(tid);
        g.threads[tid].state = Run::Blocked(Block::Cv(cv_addr));
        g.tr(tid, || format!("cwait cv@{cv_addr:#x} (parked)"));
        self.pick_next(&mut g, true);
        g = self.wait_for_baton(g, tid);
        // Notified: re-acquire the mutex before returning.
        loop {
            let free = g.mutexes.entry(mutex_addr).or_default().holder.is_none();
            if free {
                let mc = {
                    let m = g.mutexes.get_mut(&mutex_addr).expect("registered above");
                    m.holder = Some(tid);
                    m.clock.clone()
                };
                g.threads[tid].clock.join(&mc);
                g.threads[tid].clock.tick(tid);
                g.tr(tid, || format!("cwait cv@{cv_addr:#x} woke, relocked"));
                return;
            }
            g.threads[tid].state = Run::Blocked(Block::Mutex(mutex_addr));
            self.pick_next(&mut g, true);
            g = self.wait_for_baton(g, tid);
        }
    }

    pub(crate) fn cv_notify(self: &Arc<Self>, tid: usize, cv_addr: usize, all: bool) {
        let mut g = self.op_gate(tid);
        g.threads[tid].clock.tick(tid);
        let woken: Vec<usize> = {
            let ws = g.cvs.entry(cv_addr).or_default();
            if all {
                std::mem::take(ws)
            } else if ws.is_empty() {
                Vec::new()
            } else {
                vec![ws.remove(0)]
            }
        };
        for &w in &woken {
            if g.threads[w].state == Run::Blocked(Block::Cv(cv_addr)) {
                g.threads[w].state = Run::Runnable;
            }
        }
        g.tr(tid, || {
            format!(
                "ntfy  cv@{cv_addr:#x} ({}, woke {:?})",
                if all { "all" } else { "one" },
                woken
            )
        });
    }

    // ---- race-detector hooks ---------------------------------------

    pub(crate) fn race_access(
        self: &Arc<Self>,
        tid: usize,
        addr: usize,
        is_write: bool,
        label: &'static str,
    ) {
        let mut g = self.op_gate(tid);
        g.threads[tid].clock.tick(tid);
        let clock = g.threads[tid].clock.clone();
        let nthreads = g.threads.len();
        let mut conflict: Option<String> = None;
        {
            let sh = g.shadows.entry(addr).or_insert_with(|| Shadow {
                write: None,
                reads: Vec::new(),
            });
            if let Some((wt, wstamp, wlabel)) = sh.write {
                if wt != tid && clock.get(wt) < wstamp {
                    conflict = Some(format!(
                        "{} \"{label}\"@{addr:#x} by T{tid} is unordered with a prior write \
                         \"{wlabel}\" by T{wt}",
                        if is_write { "write" } else { "read" },
                    ));
                }
            }
            if is_write && conflict.is_none() {
                for (rt, read) in sh.reads.iter().enumerate() {
                    if let Some((stamp, rlabel)) = read {
                        if rt != tid && clock.get(rt) < *stamp {
                            conflict = Some(format!(
                                "write \"{label}\"@{addr:#x} by T{tid} is unordered with a \
                                 prior read \"{rlabel}\" by T{rt}",
                            ));
                            break;
                        }
                    }
                }
            }
            if is_write {
                sh.write = Some((tid, clock.get(tid), label));
                sh.reads = vec![None; nthreads];
            } else {
                if sh.reads.len() < nthreads {
                    sh.reads.resize(nthreads, None);
                }
                sh.reads[tid] = Some((clock.get(tid), label));
            }
        }
        g.tr(tid, || {
            format!(
                "{} \"{label}\"@{addr:#x}",
                if is_write { "writeD" } else { "readD " }
            )
        });
        if let Some(msg) = conflict {
            self.fail(
                &mut g,
                format!(
                    "data race: {msg}\nhint: the pairing atomic's Ordering is too weak, or the \
                     access lacks synchronization entirely"
                ),
            );
            drop(g);
            panic_any(ModelAbort);
        }
    }

    // ---- threads ----------------------------------------------------

    pub(crate) fn yield_now(self: &Arc<Self>, tid: usize) {
        let mut g = self.m.lock();
        self.abort_check(&g);
        g.steps += 1;
        if g.steps > g.opts_max_steps {
            let bound = g.opts_max_steps;
            self.fail(
                &mut g,
                format!("step bound {bound} exceeded: livelock or runaway retry loop"),
            );
            drop(g);
            panic_any(ModelAbort);
        }
        // A yield declares "I cannot make progress": when another thread
        // is runnable the baton MUST move (loom semantics). Allowing
        // "stay put" as an option would make every spin-loop iteration a
        // fresh DFS branch and the schedule tree unbounded.
        let runnable = g.runnable();
        let mut opts: Vec<usize> = runnable.iter().copied().filter(|&t| t != tid).collect();
        if opts.is_empty() {
            opts.push(tid);
        }
        let c = g.decide(opts.len());
        g.current = opts[c];
        g.tr(tid, || format!("yield -> T{}", opts[c]));
        self.cv.notify_all();
        drop(self.wait_for_baton(g, tid));
    }

    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        parent: usize,
        f: Box<dyn FnOnce() + Send>,
    ) -> usize {
        let mut g = self.op_gate(parent);
        g.threads[parent].clock.tick(parent);
        let tid = g.threads.len();
        if tid >= g.opts_max_threads {
            let cap = g.opts_max_threads;
            self.fail(&mut g, format!("model thread limit {cap} exceeded"));
            drop(g);
            panic_any(ModelAbort);
        }
        let mut clock = g.threads[parent].clock.clone();
        clock.tick(tid);
        g.threads.push(ThreadState {
            state: Run::Runnable,
            clock,
        });
        g.live += 1;
        g.tr(parent, || format!("spawn T{tid}"));
        let exec = Arc::clone(self);
        let h = std::thread::Builder::new()
            .name(format!("cmpi-model-t{tid}"))
            .spawn(move || thread_main(exec, tid, f))
            .expect("spawn model OS thread");
        g.os_handles.push(h);
        tid
    }

    pub(crate) fn join_thread(self: &Arc<Self>, tid: usize, target: usize) {
        let mut g = self.op_gate(tid);
        loop {
            if matches!(g.threads[target].state, Run::Finished) {
                let c = g.threads[target].clock.clone();
                g.threads[tid].clock.join(&c);
                g.threads[tid].clock.tick(tid);
                g.tr(tid, || format!("join  T{target}"));
                return;
            }
            g.threads[tid].state = Run::Blocked(Block::Join(target));
            self.pick_next(&mut g, true);
            g = self.wait_for_baton(g, tid);
        }
    }

    pub(crate) fn quarantine(&self, b: Box<dyn Any + Send>) {
        self.m.lock().graveyard.push(b);
    }
}

fn thread_main(exec: Arc<Execution>, tid: usize, f: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    IN_MODEL.with(|c| c.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| {
        let g = exec.m.lock();
        drop(exec.wait_for_baton(g, tid));
        f();
    }));
    let mut g = exec.m.lock();
    if let Err(p) = result {
        if !p.is::<ModelAbort>() {
            let msg = panic_message(p.as_ref());
            exec.fail(&mut g, format!("panic in model thread T{tid}: {msg}"));
        }
    }
    g.threads[tid].state = Run::Finished;
    g.live -= 1;
    for t in 0..g.threads.len() {
        if g.threads[t].state == Run::Blocked(Block::Join(tid)) {
            g.threads[t].state = Run::Runnable;
        }
    }
    if g.live == 0 {
        g.done = true;
    } else {
        exec.pick_next(&mut g, true);
    }
    drop(g);
    exec.cv.notify_all();
    CURRENT.with(|c| *c.borrow_mut() = None);
}

pub(crate) struct RunOutcome {
    pub failure: Option<String>,
    pub log: Vec<Choice>,
    pub trace: Vec<String>,
}

pub(crate) fn run_once(
    opts: &Options,
    prefix: &[usize],
    trace_on: bool,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> RunOutcome {
    install_hook();
    let exec = Arc::new(Execution::new(opts, prefix.to_vec(), trace_on));
    {
        let mut g = exec.m.lock();
        let mut clock = VClock::default();
        clock.tick(0);
        g.threads.push(ThreadState {
            state: Run::Runnable,
            clock,
        });
        g.live = 1;
        g.current = 0;
    }
    let e2 = Arc::clone(&exec);
    let f2 = Arc::clone(f);
    let root = std::thread::Builder::new()
        .name("cmpi-model-t0".to_string())
        .spawn(move || thread_main(e2, 0, Box::new(move || f2())))
        .expect("spawn model root thread");
    {
        let mut g = exec.m.lock();
        while !g.done {
            exec.cv.wait(&mut g);
        }
    }
    let _ = root.join();
    loop {
        let h = exec.m.lock().os_handles.pop();
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let mut g = exec.m.lock();
    g.graveyard.clear();
    RunOutcome {
        failure: g.failure.take(),
        log: std::mem::take(&mut g.log),
        trace: std::mem::take(&mut g.trace_lines),
    }
}

pub(crate) enum ExploreResult {
    Passed { executions: usize },
    Failed { report: String },
    BudgetExhausted { executions: usize },
}

fn build_report(executions: usize, failure: &str, trace: &[String], replay: &[usize]) -> String {
    let replay_csv = replay
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "cmpi-model: bug found after {executions} execution(s)\n\
         --- failure ---\n{failure}\n\
         --- schedule trace ---\n{}\n\
         --- replay ---\nreplay: {replay_csv}\n",
        trace.join("\n")
    )
}

pub(crate) fn explore(opts: &Options, f: Arc<dyn Fn() + Send + Sync>) -> ExploreResult {
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        let out = run_once(opts, &prefix, false, &f);
        executions += 1;
        if let Some(failure) = out.failure {
            // Deterministic re-run of the same schedule with tracing on.
            let replay: Vec<usize> = out.log.iter().map(|c| c.chosen).collect();
            let traced = run_once(opts, &replay, true, &f);
            let failure = traced.failure.unwrap_or(failure);
            return ExploreResult::Failed {
                report: build_report(executions, &failure, &traced.trace, &replay),
            };
        }
        if executions >= opts.max_executions {
            return ExploreResult::BudgetExhausted { executions };
        }
        // Backtrack to the deepest choice point with an unexplored
        // alternative.
        let mut log = out.log;
        loop {
            match log.pop() {
                None => return ExploreResult::Passed { executions },
                Some(c) if c.chosen + 1 < c.options => {
                    prefix = log.iter().map(|x| x.chosen).collect();
                    prefix.push(c.chosen + 1);
                    break;
                }
                Some(_) => {}
            }
        }
    }
}

/// Run exactly one execution pinned to `schedule`, tracing on. Returns
/// the failure report if that schedule fails.
pub(crate) fn replay_once(
    opts: &Options,
    schedule: &[usize],
    f: Arc<dyn Fn() + Send + Sync>,
) -> Option<String> {
    let out = run_once(opts, schedule, true, &f);
    out.failure
        .map(|failure| build_report(1, &failure, &out.trace, schedule))
}
