//! Pins each `cmpi-analyze` rule against a fixture mini-crate: every
//! violating fixture must produce its rule's finding, and the clean
//! mirror (same patterns, annotated or fixed) must be silent.
//!
//! The fixtures live under `tests/fixtures/{violating,clean}/` and are
//! loaded through [`Workspace::from_sources`] with a fixture-specific
//! [`SeedSpec`] (`App` is the fiber entry impl type), exactly the
//! in-memory path `Workspace::load_root` funnels into.

use cmpi_model::analyze::{SeedSpec, SourceFile, Workspace};
use cmpi_model::lint::Violation;

const FIBER_BLOCK: &str = include_str!("fixtures/violating/fiber_block.rs");
const LOCK_CYCLE: &str = include_str!("fixtures/violating/lock_cycle.rs");
const ATOMIC_UNPAIRED: &str = include_str!("fixtures/violating/atomic_unpaired.rs");
const CLEAN: &str = include_str!("fixtures/clean/annotated.rs");

fn seeds() -> SeedSpec {
    SeedSpec {
        impl_types: vec!["App".to_string()],
        fns: Vec::new(),
    }
}

fn analyze(files: &[(&str, &str)]) -> Vec<Violation> {
    let ws = Workspace::from_sources(
        files
            .iter()
            .map(|(p, t)| SourceFile {
                path: (*p).to_string(),
                text: (*t).to_string(),
            })
            .collect(),
    );
    ws.analyze(&seeds())
}

fn rule_findings<'v>(all: &'v [Violation], rule: &str) -> Vec<&'v Violation> {
    all.iter().filter(|v| v.rule == rule).collect()
}

#[test]
fn fiber_blocking_catches_indirect_sleep_and_direct_wait() {
    let all = analyze(&[("fiber_block.rs", FIBER_BLOCK)]);
    let fb = rule_findings(&all, "fiber-blocking");
    assert!(
        fb.iter().any(|v| v.msg.contains("thread::sleep")),
        "sleep two calls below the App seed must be caught: {all:?}"
    );
    assert!(
        fb.iter().any(|v| v.msg.contains("condvar")),
        "unannotated condvar wait in a seed method must be caught: {all:?}"
    );
}

#[test]
fn fiber_blocking_reports_the_call_path() {
    let all = analyze(&[("fiber_block.rs", FIBER_BLOCK)]);
    let sleep = rule_findings(&all, "fiber-blocking")
        .into_iter()
        .find(|v| v.msg.contains("thread::sleep"))
        .expect("sleep finding");
    // The finding must name the taint path from the seed, not just the
    // sink — that is what makes a report actionable.
    assert!(
        sleep.msg.contains("tick") && sleep.msg.contains("backoff"),
        "expected seed->helper path in message, got: {}",
        sleep.msg
    );
}

#[test]
fn lock_order_catches_two_lock_cycle() {
    let all = analyze(&[("lock_cycle.rs", LOCK_CYCLE)]);
    let lo = rule_findings(&all, "lock-order");
    assert!(
        !lo.is_empty(),
        "a->b vs b->a nesting must be reported: {all:?}"
    );
    assert!(
        lo.iter()
            .all(|v| v.msg.contains("`a`") && v.msg.contains("`b`")),
        "cycle findings must name both locks: {lo:?}"
    );
}

#[test]
fn atomic_pairing_catches_one_sided_release() {
    let all = analyze(&[("atomic_unpaired.rs", ATOMIC_UNPAIRED)]);
    let ap = rule_findings(&all, "atomic-pairing");
    assert!(
        ap.iter().any(|v| v.msg.contains("ready")),
        "Release store of `ready` with only Relaxed loads must be \
         reported: {all:?}"
    );
    // `payload` is Relaxed on both sides by design: not a pairing bug.
    assert!(
        !ap.iter().any(|v| v.msg.contains("payload")),
        "relaxed-only field must not be reported: {ap:?}"
    );
}

#[test]
fn clean_fixture_is_silent() {
    let all = analyze(&[("annotated.rs", CLEAN)]);
    assert!(
        all.is_empty(),
        "clean mirror must produce zero findings: {all:?}"
    );
}

#[test]
fn violations_vanish_when_annotated() {
    // The same blocking wait as the violating fixture, plus the window
    // annotation: the finding must disappear — this pins the
    // annotation-window mechanics, not just the clean-file composite.
    let src = r#"
use std::sync::{Condvar, Mutex};
pub struct App { cv: Condvar, m: Mutex<u32> }
impl App {
    pub fn drain(&self) {
        let mut g = self.m.lock().unwrap();
        // fiber-ok: test justification.
        g = self.cv.wait(g).unwrap();
        let _ = *g;
    }
}
"#;
    let all = analyze(&[("annotated_wait.rs", src)]);
    assert!(
        rule_findings(&all, "fiber-blocking").is_empty(),
        "fiber-ok within the window must suppress the finding: {all:?}"
    );
}

#[test]
fn whole_fixture_set_reports_exactly_the_violating_files() {
    let all = analyze(&[
        ("fiber_block.rs", FIBER_BLOCK),
        ("lock_cycle.rs", LOCK_CYCLE),
        ("atomic_unpaired.rs", ATOMIC_UNPAIRED),
        ("annotated.rs", CLEAN),
    ]);
    assert!(
        all.iter().all(|v| v.file != "annotated.rs"),
        "clean file must stay silent even alongside violators: {all:?}"
    );
    for rule in cmpi_model::analyze::RULES {
        assert!(
            all.iter().any(|v| v.rule == *rule),
            "rule {rule} must fire somewhere in the violating set: {all:?}"
        );
    }
}
