//! Litmus tests for the model-checking engine itself (only meaningful
//! under `--cfg cmpi_model`; an empty test binary otherwise).
//!
//! Each test pins one semantic obligation of the checker: weak-memory
//! load choices (store buffering), release/acquire edges (message
//! passing), RMW atomicity, FastTrack race detection, lost-wakeup
//! detection, and deterministic replay. The runtime-structure model
//! tests in cmpi-core / cmpi-shmem / cmpi-fabric lean on every one of
//! these behaviors, so regressions here surface first.
#![cfg(cmpi_model)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use cmpi_model::model::{self, thread, Builder};
use cmpi_model::race;
use cmpi_model::sync::{AtomicBool, AtomicU64, Condvar, Mutex};

/// Store buffering with SeqCst: `r1 == 0 && r2 == 0` must be
/// unreachable — every interleaving commits at least one store into the
/// SC order before the other thread's load.
#[test]
fn store_buffering_seqcst_forbids_both_zero() {
    let stats = Builder::new().check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r1 = x.load(Ordering::SeqCst);
        let r2 = t.join();
        assert!(r1 == 1 || r2 == 1, "SB: both threads read 0 under SeqCst");
    });
    assert!(stats.executions > 1, "expected multiple interleavings");
}

/// Store buffering with Relaxed: both-zero IS reachable — the checker
/// must offer each load the stale initial store.
#[test]
fn store_buffering_relaxed_reaches_both_zero() {
    let report = Builder::new().check_expect_failure(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        let r1 = x.load(Ordering::Relaxed);
        let r2 = t.join();
        assert!(r1 == 1 || r2 == 1, "SB: both threads read 0");
    });
    assert!(report.contains("both threads read 0"), "report:\n{report}");
    assert!(
        model::extract_replay(&report).is_some(),
        "failure report must carry a replay line:\n{report}"
    );
}

/// Message passing with a Release flag store and Acquire flag load: once
/// the consumer sees the flag, the relaxed data store is visible.
#[test]
fn message_passing_release_acquire_publishes_data() {
    Builder::new().check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "MP: stale data after flag"
            );
        }
        t.join();
    });
}

/// Message passing with a Relaxed flag store: the edge is gone and a
/// consumer can see the flag yet read stale data. The checker must find
/// that schedule — this is exactly the bug class the mailbox and
/// fabric_ready tests rely on catching.
#[test]
fn message_passing_relaxed_flag_loses_data() {
    let report = Builder::new().check_expect_failure(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "MP: stale data after flag"
            );
        }
        t.join();
    });
    assert!(
        report.contains("stale data after flag"),
        "report:\n{report}"
    );
}

/// RMWs always read the newest store: two concurrent `fetch_add(1)`
/// never lose an update, even Relaxed.
#[test]
fn fetch_add_never_loses_updates() {
    Builder::new().check(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(c.load(Ordering::Relaxed), 2, "lost RMW update");
    });
}

/// A load/store "increment" is NOT atomic: the checker must expose the
/// lost-update interleaving the RMW test proves impossible.
#[test]
fn load_store_increment_loses_updates() {
    let report = Builder::new().check_expect_failure(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost non-RMW update");
    });
    assert!(report.contains("lost non-RMW update"), "report:\n{report}");
}

/// Two unsynchronized plain writes to the same address are a data race
/// the FastTrack shadow memory must flag.
#[test]
fn race_detector_flags_unsynchronized_writes() {
    let report = Builder::new().check_expect_failure(|| {
        let cell = Arc::new(0u64);
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            race::write(Arc::as_ptr(&c2), "writer-b");
        });
        race::write(Arc::as_ptr(&cell), "writer-a");
        t.join();
    });
    assert!(report.contains("data race"), "report:\n{report}");
    assert!(report.contains("writer-a") || report.contains("writer-b"));
}

/// The same plain writes ordered by a release/acquire handoff are not a
/// race — the detector must honor happens-before, not flag all sharing.
#[test]
fn race_detector_respects_release_acquire() {
    Builder::new().check(|| {
        let cell = Arc::new(0u64);
        let flag = Arc::new(AtomicBool::new(false));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = thread::spawn(move || {
            race::write(Arc::as_ptr(&c2), "producer");
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            race::write(Arc::as_ptr(&cell), "consumer");
        }
        t.join();
    });
}

/// Predicate-loop condvar wait never loses a wakeup.
#[test]
fn condvar_predicate_loop_never_hangs() {
    Builder::new().check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let mut ready = p2.0.lock();
            *ready = true;
            p2.1.notify_all();
            drop(ready);
        });
        let mut g = pair.0.lock();
        while !*g {
            pair.1.wait(&mut g);
        }
        drop(g);
        t.join();
    });
}

/// Checking the flag *outside* the lock and then waiting unconditionally
/// is the classic lost wakeup: notify lands between check and wait, and
/// the waiter blocks forever. The checker reports it as a deadlock.
#[test]
fn condvar_check_then_wait_race_detected_as_lost_wakeup() {
    let report = Builder::new().check_expect_failure(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new(), AtomicBool::new(false)));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let g = p2.0.lock();
            p2.2.store(true, Ordering::SeqCst);
            p2.1.notify_all();
            drop(g);
        });
        if !pair.2.load(Ordering::SeqCst) {
            let mut g = pair.0.lock();
            // Deliberately no predicate re-check: the window between the
            // flag load and this wait is the bug under test.
            pair.1.wait(&mut g);
            drop(g);
        }
        t.join();
    });
    assert!(
        report.contains("deadlock") || report.contains("blocked"),
        "report:\n{report}"
    );
}

/// A failure's `replay:` line deterministically reproduces that exact
/// schedule — the contract regression tests pin on.
#[test]
fn replay_reproduces_pinned_failure() {
    fn broken() -> impl Fn() + Send + Sync + 'static {
        || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            let r1 = x.load(Ordering::Relaxed);
            let r2 = t.join();
            assert!(r1 == 1 || r2 == 1, "SB: both threads read 0");
        }
    }
    let report = Builder::new().check_expect_failure(broken());
    let schedule = model::extract_replay(&report).expect("replay line");
    let replayed = Builder::new()
        .replay(&schedule, broken())
        .expect("pinned schedule must still fail");
    assert!(replayed.contains("both threads read 0"), "{replayed}");
}

/// Spawned model threads pass their results back through `join`.
#[test]
fn join_returns_thread_result() {
    Builder::new().check(|| {
        let t = thread::spawn(|| 7u32 + 35);
        assert_eq!(t.join(), 42);
    });
}

/// Three threads under the default preemption bound stay within budget.
#[test]
fn three_thread_exploration_completes() {
    let stats = Builder::new().max_executions(200_000).check(|| {
        let c = Arc::new(AtomicU64::new(0));
        let (a, b) = (Arc::clone(&c), Arc::clone(&c));
        let t1 = thread::spawn(move || {
            a.fetch_add(1, Ordering::AcqRel);
        });
        let t2 = thread::spawn(move || {
            b.fetch_add(2, Ordering::AcqRel);
        });
        t1.join();
        t2.join();
        assert_eq!(c.load(Ordering::Acquire), 3);
    });
    assert!(stats.executions >= 2);
}
