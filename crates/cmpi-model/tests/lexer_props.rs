//! Property tests for the shared lexer (`cmpi_model::strip`).
//!
//! The lexer underpins every lint rule and all three analyzer passes,
//! so its contract is pinned against random inputs, not just the
//! hand-written unit cases:
//!
//! 1. `lex_full` never panics — on arbitrary byte soups decoded
//!    lossily, or on Rust-flavored token soups (the adversarial case:
//!    unterminated strings, stray `r#`, nested comment openers,
//!    trailing backslashes).
//! 2. Token byte offsets are monotonic, in-bounds, non-empty, and land
//!    on `char` boundaries, so every downstream slice is panic-free.
//! 3. `strip_source` preserves byte length and line structure exactly —
//!    the invariant that keeps lint line numbers honest.

use cmpi_model::strip;
use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary (mostly-ASCII, occasionally multibyte) strings from raw
/// bytes — `from_utf8_lossy` keeps every input valid UTF-8 while still
/// exercising replacement chars and embedded control bytes.
fn raw_string() -> impl Strategy<Value = String> {
    vec(any::<u8>(), 0..64).prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

/// Rust-ish fragments: pieces that exercise the lexer's tricky state
/// machine transitions when concatenated in random orders.
fn fragment() -> impl Strategy<Value = String> {
    let lit = |s: &'static str| Just(s.to_string());
    prop_oneof![
        lit("fn "),
        lit("r#\""),
        lit("\"#"),
        lit("\""),
        lit("'"),
        lit("'a"),
        lit("b\""),
        lit("br##\""),
        lit("/*"),
        lit("*/"),
        lit("//"),
        lit("\n"),
        lit("\\"),
        lit("\\\""),
        lit("::"),
        lit("0x1f"),
        lit("ident"),
        lit("{ } ( ) [ ]"),
        lit("é∀"),
        vec(32u8..127u8, 0..8).prop_map(|b| String::from_utf8(b).unwrap()),
    ]
}

fn soup() -> impl Strategy<Value = String> {
    vec(fragment(), 0..24).prop_map(|v| v.concat())
}

proptest! {
    #[test]
    fn lex_never_panics_on_arbitrary_strings(src in raw_string()) {
        let _ = strip::lex_full(&src);
    }

    #[test]
    fn lex_never_panics_on_token_soup(src in soup()) {
        let _ = strip::lex_full(&src);
    }

    #[test]
    fn token_offsets_are_monotonic_and_sliceable(src in soup()) {
        let toks = strip::lex(&src);
        let mut prev_end = 0usize;
        for t in &toks {
            prop_assert!(t.start < t.end, "empty token {:?}", t);
            prop_assert!(t.end <= src.len(), "token past EOF {:?}", t);
            prop_assert!(t.start >= prev_end, "overlapping tokens at {:?}", t);
            prop_assert!(src.is_char_boundary(t.start), "start mid-char {:?}", t);
            prop_assert!(src.is_char_boundary(t.end), "end mid-char {:?}", t);
            // The whole point of offsets: slicing must not panic.
            let _ = &src[t.start..t.end];
            prev_end = t.end;
        }
    }

    #[test]
    fn token_lines_are_monotonic_and_in_range(src in soup()) {
        let toks = strip::lex(&src);
        let n_lines = src.lines().count().max(1);
        let mut prev = 1usize;
        for t in &toks {
            prop_assert!(t.line >= prev, "line went backwards at {:?}", t);
            prop_assert!(t.line <= n_lines, "line past EOF at {:?}", t);
            prev = t.line;
        }
    }

    #[test]
    fn strip_preserves_length_and_lines(src in soup()) {
        let stripped = strip::strip_source(&src);
        prop_assert_eq!(stripped.len(), src.len(), "byte length changed");
        prop_assert_eq!(
            stripped.matches('\n').count(),
            src.matches('\n').count(),
            "newline count changed"
        );
    }

    #[test]
    fn strip_preserves_length_on_arbitrary_strings(src in raw_string()) {
        let stripped = strip::strip_source(&src);
        prop_assert_eq!(stripped.len(), src.len());
        prop_assert_eq!(
            stripped.matches('\n').count(),
            src.matches('\n').count()
        );
    }

    #[test]
    fn code_lines_matches_source_line_count(src in soup()) {
        let codes = strip::code_lines(&src);
        prop_assert_eq!(codes.len(), src.lines().count());
    }
}
