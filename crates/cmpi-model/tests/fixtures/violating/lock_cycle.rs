//! Fixture: a two-lock ordering cycle the analyzer must catch.
//!
//! `transfer` acquires `a` then `b`; `refund` acquires `b` then `a`.
//! Both edges land in the same strongly connected component of the
//! global lock graph, so both nestings are deadlock candidates.

use std::sync::Mutex;

pub struct Ledger {
    a: Mutex<i64>,
    b: Mutex<i64>,
}

impl Ledger {
    pub fn transfer(&self, amt: i64) {
        let mut ga = self.a.lock().unwrap();
        let mut gb = self.b.lock().unwrap();
        *ga -= amt;
        *gb += amt;
    }

    pub fn refund(&self, amt: i64) {
        let mut gb = self.b.lock().unwrap();
        let mut ga = self.a.lock().unwrap();
        *gb -= amt;
        *ga += amt;
    }
}
