//! Fixture: a one-sided Release publication the analyzer must catch.
//!
//! `ready` is stored with `Release` but only ever loaded `Relaxed`, so
//! the store publishes nothing: no load on any thread synchronizes-with
//! it and `payload`'s initialization is not ordered before observation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Cell {
    ready: AtomicBool,
    payload: AtomicU64,
}

impl Cell {
    pub fn publish(&self, v: u64) {
        self.payload.store(v, Ordering::Relaxed);
        self.ready.store(true, Ordering::Release);
    }

    pub fn peek(&self) -> Option<u64> {
        if self.ready.load(Ordering::Relaxed) {
            Some(self.payload.load(Ordering::Relaxed))
        } else {
            None
        }
    }
}
