//! Fixture: fiber-blocking violations the analyzer must catch.
//!
//! `App` is the fixture seed impl type (the tests pass a custom
//! `SeedSpec`), so every method here runs "on a fiber". Two distinct
//! paths reach OS-blocking primitives with no `fiber-ok:` annotation:
//! an indirect `thread::sleep` two calls deep, and a direct condvar
//! wait.

use std::sync::Condvar;
use std::sync::Mutex;
use std::time::Duration;

pub struct App {
    cv: Condvar,
    m: Mutex<u32>,
}

impl App {
    /// Seed method -> helper -> `thread::sleep`: taint must propagate
    /// through the call graph, not just direct calls.
    pub fn tick(&self) {
        self.backoff();
    }

    fn backoff(&self) {
        nap();
    }

    /// Seed method with a direct, unannotated condvar wait.
    pub fn drain(&self) {
        let mut g = self.m.lock().unwrap();
        while *g == 0 {
            g = self.cv.wait(g).unwrap();
        }
    }
}

fn nap() {
    std::thread::sleep(Duration::from_millis(1));
}
