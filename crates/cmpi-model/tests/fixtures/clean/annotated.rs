//! Fixture: the clean mirror — every pattern from the violating
//! fixtures, either fixed or carrying the justification annotation the
//! analyzer honors. The analyzer must stay silent on this file.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Condvar;
use std::sync::Mutex;

pub struct App {
    cv: Condvar,
    m: Mutex<u32>,
    lo: Mutex<i64>,
    hi: Mutex<i64>,
    flag: AtomicBool,
    data: AtomicU64,
    gauge: AtomicU64,
}

impl App {
    /// Condvar wait, justified: the fixture pretends this method is
    /// documented as thread-mode-only.
    pub fn drain(&self) {
        let mut g = self.m.lock().unwrap();
        while *g == 0 {
            // fiber-ok: fixture — documented thread-mode-only path.
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Nested locks, same global order everywhere: `lo` before `hi`.
    pub fn transfer(&self, amt: i64) {
        // lock-order: fixture — lo -> hi is the recorded order.
        let mut ga = self.lo.lock().unwrap();
        let mut gb = self.hi.lock().unwrap();
        *ga -= amt;
        *gb += amt;
    }

    pub fn audit(&self) -> i64 {
        let ga = self.lo.lock().unwrap();
        let gb = self.hi.lock().unwrap();
        *ga + *gb
    }

    /// Release store paired with an Acquire load: proper publication.
    pub fn publish(&self, v: u64) {
        self.data.store(v, Ordering::Relaxed);
        self.flag.store(true, Ordering::Release);
    }

    pub fn peek(&self) -> Option<u64> {
        if self.flag.load(Ordering::Acquire) {
            Some(self.data.load(Ordering::Relaxed))
        } else {
            None
        }
    }

    /// One-sided Release with an explicit justification.
    pub fn bump(&self) {
        // pairing-ok: fixture — monotonic gauge read by a debugger only.
        self.gauge.store(1, Ordering::Release);
    }

    pub fn gauge(&self) -> u64 {
        self.gauge.load(Ordering::Relaxed)
    }
}
