//! The analyzer against the *real* workspace: the tree this commit
//! ships must be green — every deliberate blocking site, lock nesting,
//! and one-sided atomic carries its justification annotation, and the
//! global lock graph is acyclic. This is the same invariant check.sh's
//! `analyze` stage enforces, pinned here so `cargo test` alone catches
//! a regression.

use std::path::Path;

use cmpi_model::analyze::{default_seeds, passes, Workspace};

fn load() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    Workspace::load_root(root).expect("load workspace sources")
}

#[test]
fn real_workspace_has_zero_unjustified_findings() {
    let ws = load();
    assert!(
        ws.files.len() > 50,
        "workspace walk looks truncated: {} files",
        ws.files.len()
    );
    let findings = ws.analyze(&default_seeds());
    assert!(
        findings.is_empty(),
        "analyzer must be green on the shipped tree:\n{}",
        findings
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn real_workspace_lock_graph_is_acyclic_and_small() {
    let ws = load();
    let (cycles, edges) = passes::lock_order(&ws);
    assert!(cycles.is_empty(), "lock-order cycles: {cycles:?}");
    // The recorded DAG is documented in DESIGN.md §17; a new nesting
    // edge is fine but must be a conscious decision — update the table
    // there and this bound together.
    assert!(
        edges.len() <= 8,
        "lock graph grew past the documented inventory: {:?}",
        edges
            .iter()
            .map(|e| format!("{} -> {} ({})", e.from, e.to, e.witness))
            .collect::<Vec<_>>()
    );
    // The one known nesting: park holds `idle` while any_queued sweeps
    // the per-worker run queues (closure param `q`). If this edge
    // disappears, the extractor went blind, not the code clean.
    assert!(
        edges
            .iter()
            .any(|e| e.from == "idle" && e.witness == "PoolShared::park"),
        "expected the idle->queue-sweep edge from PoolShared::park: {:?}",
        edges
            .iter()
            .map(|e| format!("{} -> {} ({})", e.from, e.to, e.witness))
            .collect::<Vec<_>>()
    );
}
