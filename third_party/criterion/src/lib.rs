//! Offline stand-in for `criterion`.
//!
//! Implements the API slice the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `sample_size`, `finish`, the `criterion_group!`/`criterion_main!`
//! macros) so `cargo bench` and `cargo clippy --all-targets` work
//! offline. Each bench body runs a handful of iterations and reports
//! mean wall time — smoke-test fidelity, not statistics.

use std::fmt::Display;
use std::time::Instant;

/// Top-level bench driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 3 }
    }
}

impl Criterion {
    /// Set how many timed samples each bench records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }

    /// Run one stand-alone bench.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
    }
}

/// Named collection of benches sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each bench in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one bench in the group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Run one parameterised bench in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (no-op; matches the real API).
    pub fn finish(self) {}
}

/// Identifier for a parameterised bench.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Timer handle passed to bench bodies.
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, running it `sample_size` times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.total_ns += start.elapsed().as_nanos();
            self.iters += 1;
            drop(out);
        }
    }
}

fn run_one<F>(label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { samples, total_ns: 0, iters: 0 };
    f(&mut b);
    let mean = if b.iters > 0 { b.total_ns / b.iters as u128 } else { 0 };
    println!("bench {label:<50} {:>12} ns/iter ({} iters)", mean, b.iters);
}

/// Hint that a value is observed (re-export shape of the real crate).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
