//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace derives these traits on configuration types so that a
//! future persistence layer can serialize scenarios, but nothing invokes
//! the generated code today. The build environment has no network access
//! to the real `serde_derive`, so these derives expand to nothing and the
//! trait obligations are met by blanket impls in the sibling `serde`
//! stand-in.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` has a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
