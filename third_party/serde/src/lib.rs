//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations on configuration types; no code path serializes at
//! runtime and the build environment cannot reach a crate registry. The
//! traits here are markers with blanket impls so the derive annotations
//! (which expand to nothing — see the `serde_derive` stand-in) type-check
//! exactly as the real crate would for this workspace.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T> Deserialize<'de> for T {}
