//! Offline stand-in for the `bytes` crate, covering the slice of its API
//! this workspace uses: `Bytes` (cheap clone + zero-copy `slice`),
//! `BytesMut` (growable builder with `freeze`), and the `BufMut`
//! little-endian writers.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Immutable, reference-counted byte buffer; clones and sub-slices share
/// the same allocation.
///
/// Two backings behind one 3-word handle: a shared `Arc<Vec<u8>>` (so
/// `From<Vec<u8>>` and `BytesMut::freeze` adopt the vector's allocation
/// as-is and [`Bytes::try_into_vec`] can hand it back for reuse), or a
/// borrowed `&'static [u8]` (so [`Bytes::new`] and [`Bytes::from_static`]
/// never allocate, matching the real crate). `view` always points at the
/// visible window; `arc` is `None` for the static backing.
#[derive(Clone)]
pub struct Bytes {
    /// Raw window into either the `Arc`'d vector or a static slice. Kept
    /// as raw parts (not `&'static [u8]`) because for the shared backing
    /// the borrow is tied to `arc`, not `'static`.
    ptr: *const u8,
    len: usize,
    arc: Option<Arc<Vec<u8>>>,
}

// SAFETY: the pointer window either targets a `&'static [u8]` or the
// heap buffer owned by `arc`, which is immutable (no API mutates the
// vector after construction) and kept alive by the `Arc` travelling with
// the handle, so sending/sharing across threads is sound.
unsafe impl Send for Bytes {}
// SAFETY: see `Send` above — all access is read-only.
unsafe impl Sync for Bytes {}

impl Bytes {
    /// Empty buffer. Allocation-free: borrows a static empty slice.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Buffer borrowing a static slice. Allocation-free.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { ptr: bytes.as_ptr(), len: bytes.len(), arc: None }
    }

    /// Buffer holding a copy of `bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero-copy sub-slice sharing this buffer's allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        // SAFETY: `lo <= hi <= len` was just asserted, so the new window
        // stays inside the backing the (cloned) `arc`/static keeps alive.
        Bytes { ptr: unsafe { self.ptr.add(lo) }, len: hi - lo, arc: self.arc.clone() }
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr`/`len` always describe a live window — into the
        // vector `self.arc` owns (immutable while any handle exists) or
        // into a `&'static [u8]`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Recover the backing `Vec` when this handle is the sole owner of
    /// the whole allocation; otherwise the handle comes back unchanged.
    /// Lets receivers recycle drained buffers without copying. Static-
    /// backed buffers (including the empty one) always refuse: they have
    /// no allocation to give back.
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        let Bytes { ptr, len, arc } = self;
        match arc {
            Some(data) if ptr == data.as_ptr() && len == data.len() => {
                Arc::try_unwrap(data).map_err(|data| Bytes { ptr, len, arc: Some(data) })
            }
            arc => Err(Bytes { ptr, len, arc }),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let (ptr, len) = (v.as_ptr(), v.len());
        Bytes { ptr, len, arc: Some(Arc::new(v)) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte builder; `freeze` converts to an immutable [`Bytes`]
/// without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Convert into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.buf, f)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

/// Writer extension trait: the little-endian integer appends the
/// workspace's wire formats use.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_and_compare() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(42);
        b.extend_from_slice(b"xyz");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 15);
        assert_eq!(&frozen.slice(12..)[..], b"xyz");
        assert_eq!(frozen.slice(..4).to_vec(), 0xdead_beefu32.to_le_bytes());
        let clone = frozen.clone();
        assert_eq!(clone, frozen);
    }

    #[test]
    fn try_into_vec_requires_sole_whole_ownership() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let clone = b.clone();
        let b = b.try_into_vec().expect_err("shared: must refuse");
        drop(clone);
        let tail = b.slice(1..);
        assert!(tail.try_into_vec().is_err(), "sub-slice: must refuse");
        let v = b.try_into_vec().expect("sole whole owner");
        assert_eq!(v, vec![1, 2, 3]);
    }
}
