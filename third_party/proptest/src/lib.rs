//! Offline stand-in for `proptest`, covering the DSL slice this
//! workspace uses: the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, integer-range and
//! `collection::vec`, tuple and `prop_map` strategies, `any::<T>()`,
//! and the `prop_assert*` macros. Sampling is deterministic (splitmix64 keyed by case index) so
//! failures reproduce; there is no shrinking.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a
/// `#[test]` that samples every argument `cases` times and runs the
/// body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)), __case as u64);
                $crate::__proptest_bind!(__rng, $($args)*);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $arg:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $arg = $crate::Strategy::sample(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategies per sample. All arms must
/// yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
