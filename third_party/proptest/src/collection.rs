//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Element-count bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Strategy for `Vec<S::Value>` with a sampled length.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Vector of values drawn from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for fixed-size subsets of a slice of cloneable items.
pub struct SubsetStrategy<T: Clone> {
    items: Vec<T>,
}

/// Arbitrary subset (possibly empty) of `items`.
pub fn subset<T: Clone>(items: Vec<T>) -> SubsetStrategy<T> {
    SubsetStrategy { items }
}

impl<T: Clone> Strategy for SubsetStrategy<T> {
    type Value = Vec<T>;
    fn sample(&self, rng: &mut TestRng) -> Vec<T> {
        self.items.iter().filter(|_| rng.next_u64() & 1 == 1).cloned().collect()
    }
}
