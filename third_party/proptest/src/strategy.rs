//! Strategies: how to sample a value from an RNG.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for sampling values of `Self::Value`.
pub trait Strategy {
    /// The sampled type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Adapter applying `f` to every sample (mirrors proptest's
    /// `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! tuple_strategy {
    ($($S:ident $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A 0, B 1);
tuple_strategy!(A 0, B 1, C 2);
tuple_strategy!(A 0, B 1, C 2, D 3);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of `T` — the `any::<T>()` entry point.
pub struct Any<T>(PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    rng.next_u64() as $t
                } else {
                    lo + rng.below(span) as $t
                }
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    rng.next_u64() as $t
                } else {
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        }
    )*};
}

arbitrary_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Object-safe boxed strategy, for heterogeneous `prop_oneof!` arms.
pub struct BoxedStrategy<T> {
    sample: Box<dyn Fn(&mut TestRng) -> T>,
}

/// Box a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy { sample: Box::new(move |rng| s.sample(rng)) }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Uniform choice between boxed strategies.
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choice over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}
