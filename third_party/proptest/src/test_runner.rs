//! Deterministic RNG and per-test configuration.

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; this stand-in keeps virtual-time
        // simulations affordable in CI while still sweeping a real sample.
        ProptestConfig { cases: 32 }
    }
}

/// Splitmix64-based RNG, seeded from the test's module path and case
/// index so every run of every case is reproducible.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for one case of one named property.
    pub fn deterministic(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut state = h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // Warm the state so nearby (name, case) pairs decorrelate.
        splitmix64(&mut state);
        TestRng { state }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Modulo bias is irrelevant at test-sampling fidelity.
        self.next_u64() % bound
    }
}
