//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Presents parking_lot's API shape — `lock()` with no `Result`, a
//! `Condvar::wait` that takes `&mut MutexGuard` — over the std
//! primitives. Poisoning is swallowed (parking_lot has none): a panicked
//! holder does not wedge other threads beyond what the workspace's own
//! panic propagation already does.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::sync::PoisonError;

/// Mutual exclusion with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can move the std guard out and back while
    // the caller keeps holding the same wrapper.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn std_guard(&mut self) -> sync::MutexGuard<'a, T> {
        self.inner.take().expect("guard already surrendered to a condvar wait")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard surrendered to a condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard surrendered to a condvar wait")
    }
}

/// Result of a timed condvar wait (parking_lot's shape).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (as opposed
    /// to a notification).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable matching parking_lot's `wait(&mut guard)` shape.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically release the guard's lock and sleep until notified; the
    /// lock is re-acquired (into the same guard) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.std_guard();
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Like [`Condvar::wait`], but give up once `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.std_guard();
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_all();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
        assert!(*m.lock());
    }
}
