//! # container-mpi
//!
//! A locality-aware MPI library for container-based HPC clouds — a
//! from-scratch Rust reproduction of *"High Performance MPI Library for
//! Container-Based HPC Cloud on InfiniBand Clusters"* (Zhang, Lu, Panda —
//! ICPP 2016), including every substrate the paper runs on: a simulated
//! InfiniBand fabric, host shared memory + CMA, Docker-style containers
//! with Linux-namespace semantics, the MVAPICH2-style MPI library with the
//! paper's Container Locality Detector, the OSU micro-benchmarks, and the
//! Graph 500 / NAS application workloads.
//!
//! This crate is a facade: it re-exports the workspace members under
//! stable paths and hosts the runnable examples and the cross-crate
//! integration tests.
//!
//! ```
//! use container_mpi::prelude::*;
//!
//! // Two containers on one host; the detector routes through SHM.
//! let scenario = DeploymentScenario::containers(1, 2, 1, NamespaceSharing::default());
//! let result = JobSpec::new(scenario).run(|mpi| {
//!     let sum = mpi.allreduce(&[mpi.rank() as u64 + 1], ReduceOp::Sum);
//!     sum[0]
//! });
//! assert_eq!(result.results, vec![3, 3]);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
/// Simulated cluster substrate (hosts, containers, namespaces, cost
/// model, virtual time).
pub use cmpi_cluster as cluster;

/// Simulated shared memory and Cross Memory Attach.
pub use cmpi_shmem as shmem;

/// Simulated InfiniBand verbs.
pub use cmpi_fabric as fabric;

/// The MPI library (the paper's contribution).
pub use cmpi_core as mpi;

/// Causal profiling: per-peer channel matrices, wait-state analysis,
/// JSON export (the `figures --profile` / `osu --profile` payload).
pub use cmpi_prof as prof;

/// OSU-style micro-benchmarks.
pub use cmpi_osu as osu;

/// Graph 500 and NAS Parallel Benchmark applications.
pub use cmpi_apps as apps;

/// PGAS-style global arrays (the paper's future-work extension).
pub use cmpi_pgas as pgas;

/// The most common imports in one place.
pub mod prelude {
    pub use cmpi_cluster::{
        Channel, ContainerId, CostModel, DeploymentScenario, FaultPlan, HostId, MidRunFault,
        MidRunTrigger, NamespaceSharing, SimTime, Tunables,
    };
    pub use cmpi_core::{
        CallClass, Comm, Completion, DowngradeReason, ExecMode, JobProfile, JobResult, JobSpec,
        JobTrace, LocalityPolicy, Mpi, MpiError, RecoveryStats, ReduceOp, Request, Status,
        WaitClass, Window, ANY_SOURCE, ANY_TAG, FAILURE_LEASE,
    };
}
