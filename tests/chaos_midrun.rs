//! Mid-run chaos suite: ranks die *while the job is running* — process
//! crash, hung rank, whole-container kill — and the job survives through
//! the failure detector + ULFM revoke/shrink/agree path.
//!
//! The determinism contract at this layer is the *recovery boundary*:
//! deaths are self-inflicted at the dying rank's own deterministic call
//! boundary, but rendezvous handshakes straddling a death can resolve
//! either way in real time. So these tests assert result values, survivor
//! membership and error values — which must be bit-identical across runs
//! — and never timings, context ids or scheduling-dependent stats.

use bytes::Bytes;
use container_mpi::apps::graph500::{self, FtRankOutcome, Graph500Config};
use container_mpi::prelude::*;

fn cfg() -> Graph500Config {
    Graph500Config {
        scale: 9,
        edgefactor: 8,
        num_roots: 2,
        ..Default::default()
    }
}

/// The acceptance-scale scenario: 32 ranks as 2 hosts x 4 containers x 4
/// ranks. Container c holds ranks 4c..4c+4; containers 0-3 are on host 0.
fn acceptance() -> DeploymentScenario {
    DeploymentScenario::containers(2, 4, 4, NamespaceSharing::default())
}

type FtResults = Vec<Result<FtRankOutcome, MpiError>>;

fn run_ft(
    scenario: DeploymentScenario,
    plan: FaultPlan,
) -> (FtResults, JobResult<Result<FtRankOutcome, MpiError>>) {
    let r = graph500::run_ft(&JobSpec::new(scenario).with_faults(plan), cfg());
    (r.results.clone(), r)
}

/// The core mid-run robustness check, shared by the three fault classes:
/// survivors complete with one agreed outcome, the doomed ranks report
/// their own death, and the whole result vector is identical across runs.
fn assert_survivable(
    scenario: DeploymentScenario,
    plan: FaultPlan,
    doomed: &[usize],
) -> JobResult<Result<FtRankOutcome, MpiError>> {
    let n = scenario.num_ranks();
    let clean = graph500::run_ft(&JobSpec::new(scenario.clone()), cfg());
    let (a, job) = run_ft(scenario.clone(), plan.clone());
    let (b, _) = run_ft(scenario, plan);

    // Recovery-boundary determinism: the full per-rank outcome vector
    // (values and error values alike) is identical run to run — except
    // the recovery count. A shrink decision may miss a death that lands
    // (in real time) after its epoch and iterate at generation + 1 (see
    // the ft.rs module doc), so `recoveries` is a scheduling-dependent
    // stat: it still must agree across survivors *within* a run (the
    // `reference` comparison below), but not across runs.
    let shape = |r: &FtResults| -> FtResults {
        r.iter()
            .map(|x| {
                x.clone().map(|mut o| {
                    o.recoveries = 0;
                    o
                })
            })
            .collect()
    };
    assert_eq!(
        shape(&a),
        shape(&b),
        "mid-run fault recovery must be deterministic"
    );

    let survivors: Vec<usize> = (0..n).filter(|r| !doomed.contains(r)).collect();
    for &d in doomed {
        assert_eq!(
            a[d],
            Err(MpiError::ProcessFailed { peer: d }),
            "doomed rank {d} must report its own death"
        );
    }
    let reference = a[survivors[0]]
        .as_ref()
        .expect("survivor failed to recover");
    assert_eq!(
        reference.comm_ranks, survivors,
        "shrunk communicator must hold exactly the survivors"
    );
    assert!(reference.recoveries >= 1, "no recovery cycle recorded");
    for &s in &survivors {
        assert_eq!(
            a[s].as_ref().expect("survivor failed to recover"),
            reference,
            "survivor {s} disagreed on the agreed outcome"
        );
    }
    // The reached-vertex count per root is a property of the graph, not
    // of the partition: it must match the fault-free run exactly even
    // though the survivors repartitioned the graph.
    let clean_out = clean.results[0].as_ref().expect("clean run failed");
    assert_eq!(
        reference.reached, clean_out.reached,
        "recomputed BFS diverged from the fault-free answer"
    );
    job
}

/// Detection happened, and in bounded virtual time: conviction is lease
/// expiry, so the worst detection latency sits between one lease and a
/// small multiple of it (slack for the convicting rank's own clock).
fn assert_bounded_detection(rec: &RecoveryStats, survivors: u64) {
    assert!(
        rec.convictions >= survivors,
        "every survivor must convict the dead: {rec:?}"
    );
    assert!(rec.suspicions >= survivors, "{rec:?}");
    assert!(rec.revokes >= survivors, "{rec:?}");
    assert!(rec.shrinks >= survivors, "{rec:?}");
    let lease = FAILURE_LEASE.as_ns();
    assert!(
        rec.detect_ns >= lease,
        "conviction cannot precede lease expiry: {rec:?}"
    );
    assert!(
        rec.detect_ns < 100 * lease,
        "detection latency unbounded: {rec:?}"
    );
}

#[test]
fn graph500_survives_a_midrun_rank_crash() {
    let doomed = 20usize; // container 5, host 1
    let plan = FaultPlan::none().with_crash(doomed, MidRunTrigger::AfterOps(50));
    let job = assert_survivable(acceptance(), plan, &[doomed]);
    assert_bounded_detection(&job.stats.recovery(), 31);
}

#[test]
fn graph500_survives_a_hung_rank() {
    // A hung rank keeps its queues open and its endpoint attached: no
    // transport error ever fires, only lease expiry reveals it.
    let doomed = 9usize; // container 2, host 0
    let plan = FaultPlan::none().with_hang(doomed, MidRunTrigger::AfterOps(70));
    let job = assert_survivable(acceptance(), plan, &[doomed]);
    assert_bounded_detection(&job.stats.recovery(), 31);
}

#[test]
fn graph500_survives_a_whole_container_kill() {
    // Container 5 = ranks 20..24, all on host 1: four deaths, one shrink.
    let plan = FaultPlan::none().with_container_kill(ContainerId(5), MidRunTrigger::AfterOps(60));
    let job = assert_survivable(acceptance(), plan, &[20, 21, 22, 23]);
    assert_bounded_detection(&job.stats.recovery(), 28);
}

#[test]
fn pending_operations_on_a_dead_peer_error_instead_of_hanging() {
    // 4 ranks in 2 containers; rank 1 crashes at its 3rd MPI call. Every
    // blocked-operation shape — exact-source recv, wildcard recv,
    // rendezvous send — must finish with ProcessFailed, and an eager send
    // to the corpse must still complete locally (MPI local-completion
    // semantics: a send is complete when the buffer is reusable).
    let scenario = DeploymentScenario::containers(1, 2, 2, NamespaceSharing::default());
    let plan = FaultPlan::none().with_crash(1, MidRunTrigger::AfterOps(3));
    let run = || {
        JobSpec::new(scenario.clone())
            .with_faults(plan.clone())
            .run_ft(|mpi| -> Result<&'static str, MpiError> {
                match mpi.rank() {
                    0 => {
                        // Two eager messages arrive before the crash...
                        let (m1, _) = mpi.try_recv_bytes(1, 7)?;
                        let (m2, _) = mpi.try_recv_bytes(1, 7)?;
                        assert_eq!((m1.as_ref(), m2.as_ref()), (&b"a"[..], &b"b"[..]));
                        // ...the third blocks on a corpse and must error.
                        match mpi.try_recv_bytes(1, 7) {
                            Err(MpiError::ProcessFailed { peer: 1 }) => Ok("recv-errored"),
                            other => panic!("exact-source recv on dead peer: {other:?}"),
                        }
                    }
                    1 => {
                        mpi.try_send_bytes(Bytes::from_static(b"a"), 0, 7)?;
                        mpi.try_send_bytes(Bytes::from_static(b"b"), 0, 7)?;
                        // Third call boundary: the scripted crash fires.
                        let e = mpi
                            .try_send_bytes(Bytes::from_static(b"c"), 0, 7)
                            .expect_err("scripted crash did not fire");
                        Err(e)
                    }
                    2 => {
                        // A posted wildcard receive matching the dead rank
                        // (nobody else ever sends to us) must drain in
                        // error, not leak.
                        let req = mpi.irecv_bytes(ANY_SOURCE, ANY_TAG);
                        match mpi.try_wait(req) {
                            Err(MpiError::ProcessFailed { peer: 1 }) => Ok("wildcard-errored"),
                            other => panic!("wildcard recv with dead peer: {other:?}"),
                        }
                    }
                    _ => {
                        // Rendezvous-sized send to the corpse: no CTS will
                        // ever come, the wait must error...
                        let big = Bytes::from(vec![0x5au8; 64 * 1024]);
                        match mpi.try_send_bytes(big, 1, 9) {
                            Err(MpiError::ProcessFailed { peer: 1 }) => {}
                            other => panic!("rendezvous send to dead peer: {other:?}"),
                        }
                        // ...while an eager send to the same corpse is a
                        // successful local completion.
                        mpi.try_send_bytes(Bytes::from_static(b"x"), 1, 9)?;
                        Ok("send-errored-then-eager-ok")
                    }
                }
            })
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    assert_eq!(a.results[0], Ok("recv-errored"));
    assert_eq!(a.results[1], Err(MpiError::ProcessFailed { peer: 1 }));
    assert_eq!(a.results[2], Ok("wildcard-errored"));
    assert_eq!(a.results[3], Ok("send-errored-then-eager-ok"));
    let rec = a.stats.recovery();
    assert!(rec.convictions >= 3, "{rec:?}");
    assert!(rec.detect_ns >= FAILURE_LEASE.as_ns(), "{rec:?}");
}

#[test]
fn collectives_on_a_revoked_communicator_fail_fast_at_every_member() {
    // No deaths at all: rank 0 revokes the world communicator before
    // touching the collective, so the others block inside it until the
    // revocation flood reaches them. Every member must fail fast with
    // Revoked — and a subsequent shrink (same membership, fresh context)
    // must restore working collectives.
    let scenario = DeploymentScenario::containers(1, 2, 4, NamespaceSharing::default());
    let run = || {
        JobSpec::new(scenario.clone()).run_ft(|mpi| -> Result<(Vec<usize>, u64), MpiError> {
            let world = mpi.comm_world();
            if mpi.rank() == 0 {
                mpi.revoke(&world);
            }
            let err = mpi
                .try_allreduce_one(&world, 1u64, ReduceOp::Sum)
                .expect_err("collective on a revoked communicator succeeded");
            assert_eq!(err, MpiError::Revoked, "wrong fail-fast error");
            // Revocation is sticky: later operations fail instantly too.
            assert!(mpi.is_revoked(&world));
            assert_eq!(
                mpi.try_barrier_comm(&world),
                Err(MpiError::Revoked),
                "revocation must be sticky"
            );
            // Shrink (nobody died, membership is unchanged) and recover.
            let fixed = mpi.try_shrink(&world)?;
            let sum = mpi.try_allreduce_one(&fixed, mpi.rank() as u64 + 1, ReduceOp::Sum)?;
            Ok((fixed.ranks().to_vec(), sum))
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    let everyone: Vec<usize> = (0..8).collect();
    for r in &a.results {
        let (ranks, sum) = r.as_ref().expect("recovery after revoke failed");
        assert_eq!(ranks, &everyone, "shrink without deaths changed membership");
        assert_eq!(*sum, 36, "collective on the shrunk communicator is wrong");
    }
    assert_eq!(a.stats.recovery().convictions, 0, "nobody died");
    assert!(a.stats.recovery().revokes >= 8);
}

#[test]
fn shrunk_communicator_rederives_locality_topology() {
    // Kill a whole container; the surviving communicator's re-derived
    // collective groups must cover exactly the survivors and preserve the
    // container partition (no dead rank lingers in any group).
    let scenario = DeploymentScenario::containers(1, 2, 4, NamespaceSharing::default());
    let plan = FaultPlan::none().with_container_kill(ContainerId(1), MidRunTrigger::AfterOps(4));
    let r = JobSpec::new(scenario).with_faults(plan).run_ft(
        |mpi| -> Result<(Vec<Vec<usize>>, bool), MpiError> {
            let world = mpi.comm_world();
            // Ranks 4..8 die at their 4th call; survivors grind allreduces
            // until the failure surfaces, then recover.
            let mut comm = world.clone();
            loop {
                match mpi.try_allreduce_one(&comm, 1u64, ReduceOp::Sum) {
                    Ok(_) => {
                        if comm.size() == 4 {
                            let groups = mpi.comm_groups(&comm).expect("no topology recorded");
                            let hier = mpi.comm_hierarchical(&comm).unwrap();
                            return Ok((groups, hier));
                        }
                    }
                    Err(MpiError::ProcessFailed { peer }) if peer == mpi.rank() => {
                        return Err(MpiError::ProcessFailed { peer })
                    }
                    Err(MpiError::ProcessFailed { .. } | MpiError::Revoked) => {
                        mpi.revoke(&comm);
                        comm = mpi.try_shrink(&comm)?;
                    }
                    Err(e) => return Err(e),
                }
            }
        },
    );
    for (rank, out) in r.results.iter().enumerate() {
        if rank < 4 {
            let (groups, _) = out.as_ref().expect("survivor failed");
            let mut members: Vec<usize> = groups.iter().flatten().copied().collect();
            members.sort_unstable();
            assert_eq!(members, vec![0, 1, 2, 3], "groups must cover the survivors");
            for g in groups {
                for &m in g {
                    assert!(m < 4, "dead rank {m} lingers in a collective group");
                }
            }
        } else {
            assert_eq!(*out, Err(MpiError::ProcessFailed { peer: rank }));
        }
    }
}

#[test]
fn fully_revoked_namespaces_plus_midrun_crash_recovers_on_hca() {
    // Satellite hardening: container 1 lost BOTH its IPC and PID
    // namespace sharing (SHM and CMA impossible — all its traffic lands
    // on the HCA loopback, counted as downgrades), and on top of that a
    // rank in container 0 crashes mid-run. The job must complete with the
    // same answers, never abort.
    let scenario = DeploymentScenario::containers(1, 2, 4, NamespaceSharing::default());
    let plan = FaultPlan::none()
        .with_revoked_ipc(ContainerId(1))
        .with_revoked_pid(ContainerId(1))
        .with_crash(1, MidRunTrigger::AfterOps(25));
    let clean = graph500::run_ft(&JobSpec::new(scenario.clone()), cfg());
    let r = graph500::run_ft(&JobSpec::new(scenario).with_faults(plan), cfg());
    let survivors: Vec<usize> = (0..8).filter(|&x| x != 1).collect();
    let out = r.results[0].as_ref().expect("survivor failed to recover");
    assert_eq!(out.comm_ranks, survivors);
    for &s in &survivors {
        assert_eq!(r.results[s].as_ref().unwrap(), out);
    }
    assert_eq!(r.results[1], Err(MpiError::ProcessFailed { peer: 1 }));
    assert_eq!(
        out.reached,
        clean.results[0].as_ref().unwrap().reached,
        "degraded-channel recovery changed the answer"
    );
    let rec = r.stats.recovery();
    // Every cross-container pair downgraded, from both sides.
    assert!(rec.hca_downgrades >= 32, "{rec:?}");
    assert!(rec.shrinks >= 7, "{rec:?}");
    assert!(
        r.stats.channel_ops(Channel::Hca) > 0,
        "no HCA fallback traffic"
    );
    assert!(
        r.stats.channel_ops(Channel::Shm) > 0,
        "intra-container SHM gone"
    );
}
