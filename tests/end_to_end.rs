//! Cross-crate integration: full jobs exercising cluster + shmem +
//! fabric + MPI + applications together.

use container_mpi::apps::graph500::{self, Graph500Config};
use container_mpi::apps::npb::{self, Kernel, NpbClass};
use container_mpi::prelude::*;

#[test]
fn the_paper_pipeline_end_to_end() {
    // The whole story in one test: a containerized deployment where the
    // default library routes through the HCA loopback and the proposed
    // library recovers near-native behaviour — with identical results.
    let cfg = Graph500Config {
        scale: 10,
        edgefactor: 8,
        num_roots: 2,
        ..Default::default()
    };
    let deployment = || DeploymentScenario::fig1(4);

    let def = graph500::run(
        &JobSpec::new(deployment()).with_policy(LocalityPolicy::Hostname),
        cfg,
    );
    let opt = graph500::run(
        &JobSpec::new(deployment()).with_policy(LocalityPolicy::ContainerDetector),
        cfg,
    );
    let native = graph500::run(&JobSpec::new(DeploymentScenario::fig1(0)), cfg);

    assert!(def.validated && opt.validated && native.validated);
    assert_eq!(def.traversed_edges, opt.traversed_edges);
    assert_eq!(def.traversed_edges, native.traversed_edges);
    // Performance ordering: proposed ~ native << default.
    assert!(opt.mean_bfs_time() < def.mean_bfs_time());
    let gap = (opt.mean_bfs_time().as_ns() as f64 - native.mean_bfs_time().as_ns() as f64)
        / native.mean_bfs_time().as_ns() as f64;
    assert!(
        gap < 0.40,
        "proposed vs native gap {gap:.2} (toy-scale bound)"
    );
}

#[test]
fn mixed_workload_single_job() {
    // One job that uses every part of the public API surface.
    let scenario = DeploymentScenario::containers(2, 2, 2, NamespaceSharing::default());
    let r = JobSpec::new(scenario).run(|mpi| {
        let n = mpi.size();
        let rank = mpi.rank();
        // pt2pt ring
        let next = (rank + 1) % n;
        let prev = (rank + n - 1) % n;
        let mut buf = [0u64];
        mpi.sendrecv(&[rank as u64], next, 1, &mut buf, prev, 1);
        assert_eq!(buf[0], prev as u64);
        // collectives
        let sum = mpi.allreduce(&[1u64], ReduceOp::Sum)[0];
        assert_eq!(sum, n as u64);
        let gathered = mpi.allgather(&[rank as u32]);
        assert_eq!(gathered, (0..n as u32).collect::<Vec<_>>());
        // one-sided
        let mut win = mpi.win_allocate(8);
        mpi.fence(&mut win);
        mpi.put(&mut win, next, 0, &[rank as u64]);
        mpi.fence(&mut win);
        let mut got = [0u64];
        mpi.win_read_local(&win, 0, &mut got);
        assert_eq!(got[0], prev as u64);
        // compute + stats
        mpi.compute(SimTime::from_us(5));
        mpi.stats().time(CallClass::Compute).as_ns()
    });
    assert!(r.results.iter().all(|&c| c == 5_000));
    assert!(
        r.stats.channel_ops(Channel::Hca) > 0,
        "cross-host traffic must use the fabric"
    );
    assert!(
        r.stats.channel_ops(Channel::Shm) > 0,
        "intra-host traffic must use shared memory"
    );
}

#[test]
fn npb_kernels_verify_on_multi_host_containers() {
    let scenario = || DeploymentScenario::containers(2, 2, 2, NamespaceSharing::default());
    for k in [Kernel::Cg, Kernel::Ft, Kernel::Is, Kernel::Lu] {
        let r = npb::run(&JobSpec::new(scenario()), k, NpbClass::S);
        assert!(r.verified, "{} failed", k.name());
    }
}

#[test]
fn locality_view_matches_scenario_ground_truth() {
    let scenario = DeploymentScenario::containers(2, 3, 2, NamespaceSharing::default());
    let spec = JobSpec::new(scenario);
    let r = spec.run(|mpi| {
        (
            mpi.locality().local_ranks().to_vec(),
            mpi.locality().local_ordering(),
            mpi.locality().in_container(),
        )
    });
    for rank in 0..spec.scenario.num_ranks() {
        let truth = spec.scenario.placement.co_resident_ranks(rank);
        let (locals, ordering, in_cont) = &r.results[rank];
        assert_eq!(locals, &truth, "rank {rank}");
        assert_eq!(*ordering, truth.iter().position(|&x| x == rank).unwrap());
        assert!(in_cont);
    }
}

#[test]
fn tunables_flow_through_to_routing() {
    // Dropping SMP_EAGER_SIZE to 512 pushes a 1 KiB message onto CMA.
    let scenario = || DeploymentScenario::pt2pt_pair(true, true, NamespaceSharing::default());
    let small_eager = JobSpec::new(scenario()).with_tunables(
        Tunables::default()
            .with_smp_eager_size(512)
            .with_smpi_length_queue(64 * 1024),
    );
    let r = small_eager.run(|mpi| {
        if mpi.rank() == 0 {
            mpi.send(&[0u8; 1024], 1, 0);
        } else {
            let mut b = [0u8; 1024];
            mpi.recv(&mut b, 0, 0);
        }
    });
    assert_eq!(r.stats.channel_ops(Channel::Cma), 1);
    assert_eq!(r.stats.channel_ops(Channel::Shm), 0);
}
