//! Failure injection: what happens when the deployment removes the
//! capabilities the paper's design depends on.

use container_mpi::apps::graph500::{self, Graph500Config};
use container_mpi::prelude::*;

#[test]
fn no_ipc_sharing_detector_falls_back_to_hca() {
    // Containers without --ipc=host cannot see each other's container
    // list or map shared queues: correctness preserved, routing falls
    // back to the loopback.
    let sharing = NamespaceSharing {
        ipc: false,
        pid: false,
        privileged: true,
    };
    let spec = JobSpec::new(DeploymentScenario::containers(1, 2, 2, sharing));
    let r = spec.run(|mpi| mpi.allreduce(&[mpi.rank() as u64], ReduceOp::Sum)[0]);
    assert!(r.results.iter().all(|&s| s == 6));
    // Same-container traffic may use SHM, but cross-container must not.
    let spec2 = JobSpec::new(DeploymentScenario::containers(1, 4, 1, sharing));
    let r2 = spec2.run(|mpi| mpi.allreduce(&[1u64], ReduceOp::Sum)[0]);
    assert!(r2.results.iter().all(|&s| s == 4));
    assert_eq!(r2.stats.channel_ops(Channel::Shm), 0);
    assert_eq!(r2.stats.channel_ops(Channel::Cma), 0);
    assert!(r2.stats.channel_ops(Channel::Hca) > 0);
}

#[test]
fn pid_only_sharing_enables_cma_not_shm() {
    let sharing = NamespaceSharing {
        ipc: false,
        pid: true,
        privileged: true,
    };
    let spec = JobSpec::new(DeploymentScenario::containers(1, 2, 1, sharing));
    let r = spec.run(|mpi| {
        if mpi.rank() == 0 {
            mpi.send(&vec![7u8; 100_000], 1, 0);
        } else {
            let mut b = vec![0u8; 100_000];
            mpi.recv(&mut b, 0, 0);
            assert!(b.iter().all(|&x| x == 7));
        }
    });
    // Large message: CMA works (shared PID ns); SHM is unavailable so the
    // detector cannot even see the peer in the container list — CMA is
    // only reachable when locality is known. Without the shared list the
    // peers look remote: HCA.
    assert_eq!(r.stats.channel_ops(Channel::Shm), 0);
    // The detector needs the shared-memory list to discover locality, so
    // without --ipc=host even the CMA-capable pair routes via HCA — the
    // same dependency the real design has.
    assert!(r.stats.channel_ops(Channel::Hca) > 0);
}

#[test]
fn ipc_only_sharing_runs_large_messages_through_chunked_shm() {
    let sharing = NamespaceSharing {
        ipc: true,
        pid: false,
        privileged: true,
    };
    let spec = JobSpec::new(DeploymentScenario::containers(1, 2, 1, sharing));
    let r = spec.run(|mpi| {
        if mpi.rank() == 0 {
            mpi.send(&vec![9u8; 100_000], 1, 0);
            0
        } else {
            let mut b = vec![0u8; 100_000];
            mpi.recv(&mut b, 0, 0);
            b.iter().filter(|&&x| x == 9).count()
        }
    });
    assert_eq!(r.results[1], 100_000);
    // Detected locality via the shared list, but no CMA: the 100 KB
    // message is chunked through the SHM queue.
    assert!(
        r.stats.channel_ops(Channel::Shm) > 10,
        "expected many chunks"
    );
    assert_eq!(r.stats.channel_ops(Channel::Cma), 0);
    assert_eq!(r.stats.channel_ops(Channel::Hca), 0);
}

#[test]
#[should_panic(expected = "privileged")]
fn unprivileged_containers_cannot_reach_remote_peers() {
    // Without --privileged the HCA is invisible; a cross-host message
    // must abort (the job cannot run, as on real hardware). Both ranks
    // attempt a send so both threads abort — a rank blocked in recv for
    // a dead peer would hang the scope, exactly like a real MPI job
    // wedging after one rank dies without an error handler.
    let sharing = NamespaceSharing {
        ipc: true,
        pid: true,
        privileged: false,
    };
    let spec = JobSpec::new(DeploymentScenario::containers(2, 1, 1, sharing));
    spec.run(|mpi| {
        let peer = 1 - mpi.rank();
        mpi.send(&[1u8], peer, 0);
        let mut b = [0u8];
        mpi.recv(&mut b, peer, 0);
    });
}

#[test]
fn unprivileged_single_host_jobs_still_work() {
    // No HCA needed when everything is co-resident and shared.
    let sharing = NamespaceSharing {
        ipc: true,
        pid: true,
        privileged: false,
    };
    let spec = JobSpec::new(DeploymentScenario::containers(1, 2, 2, sharing));
    let r = spec.run(|mpi| mpi.allreduce(&[mpi.rank() as u64 + 1], ReduceOp::Sum)[0]);
    assert!(r.results.iter().all(|&s| s == 10));
    assert_eq!(r.stats.channel_ops(Channel::Hca), 0);
}

#[test]
fn degraded_deployments_still_validate_graph500() {
    let cfg = Graph500Config {
        scale: 9,
        edgefactor: 8,
        num_roots: 1,
        ..Default::default()
    };
    for sharing in [
        NamespaceSharing::isolated(),
        NamespaceSharing {
            ipc: true,
            pid: false,
            privileged: true,
        },
        NamespaceSharing {
            ipc: false,
            pid: true,
            privileged: true,
        },
    ] {
        let spec = JobSpec::new(DeploymentScenario::containers(1, 2, 4, sharing));
        let r = graph500::run(&spec, cfg);
        assert!(r.validated, "sharing {sharing:?}");
    }
}
