//! Reproducibility: identical jobs must produce identical answers, and —
//! for communication patterns without wildcard receives — identical
//! virtual times.

use bytes::Bytes;
use container_mpi::apps::graph500::{self, Graph500Config};
use container_mpi::prelude::*;

#[test]
fn deterministic_patterns_have_bitwise_identical_times() {
    // Single host: all traffic rides SHM/CMA, where virtual time is
    // exactly reproducible. (Cross-host runs add wire-arbitration
    // ambiguity under genuine contention — see the tolerance test below.)
    let run = || {
        JobSpec::new(DeploymentScenario::containers(
            1,
            4,
            2,
            NamespaceSharing::default(),
        ))
        .run(|mpi| {
            let n = mpi.size();
            for round in 0..6u32 {
                let off = 1 + round as usize % (n - 1);
                let dst = (mpi.rank() + off) % n;
                let src = (mpi.rank() + n - off) % n;
                mpi.sendrecv_bytes(
                    Bytes::from(vec![0u8; 1000 * (round as usize + 1)]),
                    dst,
                    round,
                    src,
                    round,
                );
                mpi.allreduce(&[round as u64], ReduceOp::Max);
            }
            mpi.barrier();
            mpi.now()
        })
    };
    let a = run();
    let b = run();
    let c = run();
    assert_eq!(a.results, b.results, "virtual clocks must be reproducible");
    assert_eq!(b.results, c.results);
    assert_eq!(
        a.stats.channel_ops(Channel::Shm),
        b.stats.channel_ops(Channel::Shm)
    );
    assert_eq!(
        a.stats.channel_ops(Channel::Hca),
        b.stats.channel_ops(Channel::Hca)
    );
}

#[test]
fn cross_host_times_reproduce_within_contention_ambiguity() {
    // Across hosts, concurrent transfers can genuinely contend for the
    // wire; the interval scheduler bounds the resulting ambiguity to the
    // overlap itself (never to thread-scheduling noise). Virtual times
    // must agree tightly, channel routing exactly.
    let run = || {
        JobSpec::new(DeploymentScenario::containers(
            2,
            2,
            2,
            NamespaceSharing::default(),
        ))
        .run(|mpi| {
            let n = mpi.size();
            for round in 0..6u32 {
                let off = 1 + round as usize % (n - 1);
                let dst = (mpi.rank() + off) % n;
                let src = (mpi.rank() + n - off) % n;
                mpi.sendrecv_bytes(
                    Bytes::from(vec![0u8; 1000 * (round as usize + 1)]),
                    dst,
                    round,
                    src,
                    round,
                );
                mpi.allreduce(&[round as u64], ReduceOp::Max);
            }
            mpi.barrier();
            mpi.now()
        })
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.stats.channel_ops(Channel::Hca),
        b.stats.channel_ops(Channel::Hca)
    );
    assert_eq!(
        a.stats.channel_ops(Channel::Shm),
        b.stats.channel_ops(Channel::Shm)
    );
    for (x, y) in a.results.iter().zip(&b.results) {
        let (x, y) = (x.as_ns() as f64, y.as_ns() as f64);
        assert!(
            (x - y).abs() / y < 0.02,
            "cross-host jitter too large: {x} vs {y}"
        );
    }
}

#[test]
fn graph500_answers_are_reproducible() {
    // BFS uses ANY_SOURCE, so virtual times may jitter slightly — but the
    // *answers* (trees, traversal counts, validation) must be identical.
    let cfg = Graph500Config {
        scale: 9,
        edgefactor: 8,
        num_roots: 2,
        ..Default::default()
    };
    let run = || {
        graph500::run(
            &JobSpec::new(DeploymentScenario::containers(
                1,
                2,
                4,
                NamespaceSharing::default(),
            )),
            cfg,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.traversed_edges, b.traversed_edges);
    assert!(a.validated && b.validated);
    // Jitter bound: wildcard matching may reorder receive-side copies, so
    // per-search times vary run to run; the level-synchronous structure
    // still keeps them within the same small-multiple band (at this toy
    // scale each search is only tens of microseconds).
    for (x, y) in a.bfs_times.iter().zip(&b.bfs_times) {
        let (x, y) = (x.as_ns() as f64, y.as_ns() as f64);
        assert!(
            (x - y).abs() / y < 1.0,
            "bfs time jitter too large: {x} vs {y}"
        );
    }
}

#[test]
fn collectives_are_value_deterministic_across_topologies() {
    // The same reduction over different deployments must give the same
    // numeric result (reduction order is topology-shaped but our
    // tree/doubling orders are rank-deterministic per n).
    let input = |rank: usize| vec![rank as f64 * 0.1 + 1.0; 16];
    let reduce = |scenario: DeploymentScenario| {
        JobSpec::new(scenario)
            .run(move |mpi| mpi.allreduce(&input(mpi.rank()), ReduceOp::Sum))
            .results
    };
    let a = reduce(DeploymentScenario::containers(
        1,
        2,
        4,
        NamespaceSharing::default(),
    ));
    let b = reduce(DeploymentScenario::containers(
        2,
        2,
        2,
        NamespaceSharing::default(),
    ));
    let c = reduce(DeploymentScenario::native(1, 8));
    // All ranks agree within a run.
    assert!(a.windows(2).all(|w| w[0] == w[1]));
    // And across topologies (same rank count, same algorithm).
    assert_eq!(a[0], b[0]);
    assert_eq!(a[0], c[0]);
}
