//! Acceptance test for the causal profiling subsystem: the per-peer
//! channel matrix must *show* the paper's fix working. On the Fig. 1
//! "2-Containers" deployment (one host, two containers), turning the
//! container locality detector on moves every cross-container pair off
//! the HCA loopback and onto SHM/CMA, and shrinks the share of blocked
//! time spent on genuine data transfer.

use container_mpi::apps::graph500::{bfs, Graph500Config};
use container_mpi::prelude::*;

fn profiled_bfs(policy: LocalityPolicy) -> (JobProfile, SimTime, DeploymentScenario) {
    let scenario = DeploymentScenario::fig1(2);
    let cfg = Graph500Config {
        scale: 9,
        edgefactor: 8,
        num_roots: 1,
        validate: false,
        ..Default::default()
    };
    let spec = JobSpec::new(scenario.clone())
        .with_policy(policy)
        .with_profiling();
    let r = spec.run(move |mpi| bfs::run_rank(mpi, &cfg));
    let profile = r.profile.expect("profiling was enabled");
    (profile, r.elapsed, scenario)
}

#[test]
fn locality_detector_moves_cross_container_pairs_off_the_hca() {
    let (def, def_elapsed, scenario) = profiled_bfs(LocalityPolicy::Hostname);
    let (opt, opt_elapsed, _) = profiled_bfs(LocalityPolicy::ContainerDetector);
    let n = scenario.num_ranks();
    let container = |r: usize| scenario.placement.loc(r).container;

    let mut cross_pairs = 0u64;
    for i in 0..n {
        for j in 0..n {
            if i == j || container(i) == container(j) {
                continue;
            }
            let def_bytes = def.pair_bytes(i, j);
            if def_bytes == 0 {
                continue;
            }
            cross_pairs += 1;
            // Default: hostname detection cannot see through container
            // boundaries, so the pair's traffic rides the HCA loopback.
            assert_eq!(
                def.pair_channel_bytes(i, j, Channel::Hca),
                def_bytes,
                "pair ({i},{j}) under Hostname must be HCA-only"
            );
            // Proposed: the pair is co-resident, so the detector routes
            // every byte over the intra-host channels.
            assert_eq!(
                opt.pair_channel_bytes(i, j, Channel::Hca),
                0,
                "pair ({i},{j}) under ContainerDetector must avoid the HCA"
            );
            let local = opt.pair_channel_bytes(i, j, Channel::Shm)
                + opt.pair_channel_bytes(i, j, Channel::Cma);
            assert!(
                local > 0,
                "pair ({i},{j}) under ContainerDetector must use SHM/CMA"
            );
        }
    }
    assert!(
        cross_pairs > 0,
        "the BFS must exercise cross-container pairs"
    );

    // Both ledgers balance: every byte initiated was delivered once.
    assert_eq!(def.conservation_error(), 0);
    assert_eq!(opt.conservation_error(), 0);

    // The wait-state analysis agrees with the channel matrix: the BFS's
    // user-level pt2pt traffic is identical under both policies (the
    // collectives may reschedule), yet the single-copy channels need
    // strictly less transfer time for it — and less blocked time and a
    // shorter makespan overall. (The transfer *fraction* of blocked time
    // is not asserted: late-partner time shrinks at least as fast, so
    // the ratio is workload-noise; the report surfaces both components.)
    let pt2pt_def = def.wait_total(WaitClass::Pt2pt);
    let pt2pt_opt = opt.wait_total(WaitClass::Pt2pt);
    assert_eq!(pt2pt_def.samples, pt2pt_opt.samples);
    assert!(
        pt2pt_opt.transfer < pt2pt_def.transfer,
        "pt2pt transfer: opt {} must beat def {}",
        pt2pt_opt.transfer,
        pt2pt_def.transfer
    );
    assert!(
        opt.transfer_time() < def.transfer_time(),
        "opt transfer {} must beat def {}",
        opt.transfer_time(),
        def.transfer_time()
    );
    assert!(opt.blocked_time() < def.blocked_time());
    assert!(opt_elapsed < def_elapsed);
}

#[test]
fn profile_json_round_trips_and_matches_the_matrix() {
    let (p, _, _) = profiled_bfs(LocalityPolicy::ContainerDetector);
    let doc = p.to_json().to_string();
    let parsed = container_mpi::prof::Json::parse(&doc).expect("profile JSON must parse");
    assert_eq!(
        parsed.get("num_ranks").and_then(|v| v.as_f64()),
        Some(p.num_ranks() as f64)
    );
    let ranks = parsed.get("ranks").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(ranks.len(), p.num_ranks());
    // The report renders without panicking and names every wait class
    // that recorded samples.
    let text = p.report();
    for class in WaitClass::ALL {
        if p.wait_total(class).samples > 0 {
            assert!(text.contains(class.name()), "report must show {class:?}");
        }
    }
}
