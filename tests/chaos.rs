//! Chaos suite: every fault class the `FaultPlan` substrate can inject,
//! driven through full application workloads (Graph 500 BFS and NAS
//! kernels). Each test asserts the *robustness contract*: the job never
//! panics or aborts, results are equivalent to the fault-free run, and
//! the recovery counters show the expected degraded-mode path was taken
//! (list re-init, slot repair, per-peer HCA downgrade, bounded retry).

use container_mpi::apps::graph500::{self, Graph500Config, Graph500Result};
use container_mpi::apps::npb::{self, Kernel, NpbClass};
use container_mpi::prelude::*;

fn cfg() -> Graph500Config {
    Graph500Config {
        scale: 9,
        edgefactor: 8,
        num_roots: 2,
        ..Default::default()
    }
}

/// Two containers x four ranks on one host: every fault class that
/// perturbs the shared container list is visible here.
fn one_host() -> DeploymentScenario {
    DeploymentScenario::containers(1, 2, 4, NamespaceSharing::default())
}

/// Two hosts so the job has genuine HCA traffic for fabric faults.
fn two_hosts() -> DeploymentScenario {
    DeploymentScenario::containers(2, 2, 2, NamespaceSharing::default())
}

fn bfs(scenario: DeploymentScenario, plan: FaultPlan) -> Graph500Result {
    graph500::run(&JobSpec::new(scenario).with_faults(plan), cfg())
}

/// Fault-free reference for a scenario.
fn baseline(scenario: DeploymentScenario) -> Graph500Result {
    bfs(scenario, FaultPlan::none())
}

/// The core equivalence check: identical traversal answers, valid trees.
fn assert_same_answers(faulty: &Graph500Result, clean: &Graph500Result) {
    assert!(
        faulty.validated,
        "parent tree failed validation under faults"
    );
    assert!(clean.validated);
    assert_eq!(
        faulty.traversed_edges, clean.traversed_edges,
        "BFS answers diverged"
    );
}

#[test]
fn stale_segment_from_previous_job_is_reinitialized() {
    let clean = baseline(one_host());
    let r = bfs(one_host(), FaultPlan::none().with_stale_list(HostId(0)));
    assert_same_answers(&r, &clean);
    let rec = r.stats.recovery();
    assert!(
        rec.list_recoveries >= 1,
        "stale segment should force a re-init: {rec:?}"
    );
    assert_eq!(rec.hca_downgrades, 0);
    // Recovery happens entirely before the init barrier: routing is
    // identical to the fault-free run.
    assert_eq!(
        r.stats.channel_ops(Channel::Hca),
        clean.stats.channel_ops(Channel::Hca)
    );
}

#[test]
fn corrupt_list_checksum_fails_validation_and_recovers() {
    let clean = baseline(one_host());
    let r = bfs(one_host(), FaultPlan::none().with_corrupt_list(HostId(0)));
    assert_same_answers(&r, &clean);
    let rec = r.stats.recovery();
    assert!(
        rec.list_recoveries >= 1,
        "corrupt segment should force a re-init: {rec:?}"
    );
    assert_eq!(rec.hca_downgrades, 0);
    assert_eq!(
        r.stats.channel_ops(Channel::Hca),
        clean.stats.channel_ops(Channel::Hca)
    );
}

#[test]
fn omitted_publish_downgrades_the_silent_peer_to_hca() {
    let clean = baseline(one_host());
    // Fault-free, the detector keeps everything intra-host off the HCA.
    assert_eq!(clean.stats.channel_ops(Channel::Hca), 0);

    let r = bfs(one_host(), FaultPlan::none().with_omitted_publish(3));
    assert_same_answers(&r, &clean);
    let rec = r.stats.recovery();
    // Each of the other 7 ranks independently downgrades the silent rank.
    assert_eq!(rec.hca_downgrades, 7, "{rec:?}");
    // The init barrier re-scanned (with backoff) before giving up.
    assert!(rec.init_retries > 0, "{rec:?}");
    // Traffic to/from the silent rank now rides the loopback.
    assert!(r.stats.channel_ops(Channel::Hca) > 0);
}

#[test]
fn torn_publish_reads_as_corrupt_and_peers_downgrade() {
    let clean = baseline(one_host());
    let r = bfs(one_host(), FaultPlan::none().with_torn_publish(5));
    assert_same_answers(&r, &clean);
    let rec = r.stats.recovery();
    // A torn write cannot be detected by its author (it believes the
    // publish succeeded); the other 7 ranks each see a byte that fails
    // the membership cross-check and conservatively downgrade the peer.
    assert_eq!(rec.hca_downgrades, 7, "{rec:?}");
    assert_eq!(rec.publish_conflicts, 0, "{rec:?}");
    assert!(r.stats.channel_ops(Channel::Hca) > 0);
}

#[test]
fn duplicate_publish_conflict_is_repaired_by_the_victim() {
    let clean = baseline(one_host());
    // Rank 2 (container 0) force-claims rank 6's slot (container 1).
    let r = bfs(one_host(), FaultPlan::none().with_duplicate_publish(2, 6));
    assert_same_answers(&r, &clean);
    let rec = r.stats.recovery();
    assert_eq!(rec.publish_conflicts, 1, "{rec:?}");
    assert_eq!(rec.hca_downgrades, 0, "{rec:?}");
    assert_eq!(r.stats.channel_ops(Channel::Hca), 0);
}

#[test]
fn revoked_ipc_namespace_degrades_cross_container_traffic_to_hca() {
    let clean = baseline(one_host());
    let r = bfs(
        one_host(),
        FaultPlan::none().with_revoked_ipc(ContainerId(1)),
    );
    assert_same_answers(&r, &clean);
    let rec = r.stats.recovery();
    // Every cross-container pair downgrades, from both sides:
    // 4 ranks x 4 peers x 2 directions.
    assert_eq!(rec.hca_downgrades, 32, "{rec:?}");
    // Cross-container traffic fell back to the loopback; intra-container
    // traffic still uses shared memory.
    assert!(r.stats.channel_ops(Channel::Hca) > 0);
    assert!(r.stats.channel_ops(Channel::Shm) > 0);
}

#[test]
fn revoked_pid_namespace_disables_cma_but_keeps_chunked_shm() {
    // A large message between containers normally rides CMA; with the
    // PID namespace revoked the kernel would refuse process_vm_readv,
    // so the library must chunk through SHM instead — without any
    // peer downgrade (locality detection itself still works).
    let run = |plan: FaultPlan| {
        JobSpec::new(one_host()).with_faults(plan).run(|mpi| {
            let me = mpi.rank();
            if me == 1 {
                mpi.send(&vec![0xABu8; 100_000], 5, 9);
                0
            } else if me == 5 {
                let mut buf = vec![0u8; 100_000];
                mpi.recv(&mut buf, 1, 9);
                buf.iter().filter(|&&b| b == 0xAB).count()
            } else {
                0
            }
        })
    };
    let clean = run(FaultPlan::none());
    assert!(
        clean.stats.channel_ops(Channel::Cma) > 0,
        "baseline should use CMA"
    );

    let r = run(FaultPlan::none().with_revoked_pid(ContainerId(1)));
    assert_eq!(r.results, clean.results);
    assert_eq!(r.results[5], 100_000);
    assert_eq!(
        r.stats.channel_ops(Channel::Cma),
        0,
        "CMA must be gated off"
    );
    assert!(
        r.stats.channel_ops(Channel::Shm) > 10,
        "expected chunked SHM"
    );
    assert_eq!(r.stats.channel_ops(Channel::Hca), 0);
    assert_eq!(r.stats.recovery().hca_downgrades, 0);
}

#[test]
fn qp_creation_failures_are_retried_with_backoff() {
    let clean = baseline(two_hosts());
    let r = bfs(two_hosts(), FaultPlan::none().with_qp_attach_failures(4, 3));
    assert_same_answers(&r, &clean);
    let rec = r.stats.recovery();
    assert_eq!(rec.attach_retries, 3, "{rec:?}");
    assert_eq!(rec.hca_downgrades, 0, "{rec:?}");
}

#[test]
fn transient_send_completion_errors_are_retried_until_delivery() {
    let clean = baseline(two_hosts());
    // Every 5th HCA send completes in error twice before succeeding.
    let r = bfs(two_hosts(), FaultPlan::none().with_send_faults(5, 2));
    assert_same_answers(&r, &clean);
    let rec = r.stats.recovery();
    assert!(rec.send_retries > 0, "{rec:?}");
    // Retries re-post the same payload: the delivered-op count matches.
    assert_eq!(
        r.stats.channel_ops(Channel::Hca),
        clean.stats.channel_ops(Channel::Hca)
    );
}

#[test]
fn npb_kernels_survive_every_fault_class() {
    let clean_is = npb::run(&JobSpec::new(one_host()), Kernel::Is, NpbClass::S);
    let clean_cg = npb::run(&JobSpec::new(one_host()), Kernel::Cg, NpbClass::S);
    assert!(clean_is.verified && clean_cg.verified);

    let plans: [(&str, FaultPlan); 6] = [
        ("stale", FaultPlan::none().with_stale_list(HostId(0))),
        ("corrupt", FaultPlan::none().with_corrupt_list(HostId(0))),
        ("omitted", FaultPlan::none().with_omitted_publish(2)),
        ("torn", FaultPlan::none().with_torn_publish(6)),
        ("duplicate", FaultPlan::none().with_duplicate_publish(1, 7)),
        (
            "revoked-ipc",
            FaultPlan::none().with_revoked_ipc(ContainerId(1)),
        ),
    ];
    for (name, plan) in plans {
        for kernel in [Kernel::Is, Kernel::Cg] {
            let spec = JobSpec::new(one_host()).with_faults(plan.clone());
            let r = npb::run(&spec, kernel, NpbClass::S);
            assert!(
                r.verified,
                "{} failed self-verification under {name}",
                kernel.name()
            );
            assert!(
                r.stats.recovery().any(),
                "{name} should leave a recovery trace on {}",
                kernel.name()
            );
        }
    }
}

#[test]
fn sampled_fault_plan_is_deterministic_under_a_seed() {
    let clean = baseline(two_hosts());
    let run = || bfs(two_hosts(), FaultPlan::sampled(0xC0FFEE, &two_hosts()));
    let a = run();
    let b = run();
    // Same seed, same faults, same recovery, same answers.
    assert_same_answers(&a, &clean);
    assert_eq!(a.traversed_edges, b.traversed_edges);
    assert_eq!(a.stats.recovery(), b.stats.recovery());
    // Different seed: still correct, possibly different fault mix.
    let c = bfs(two_hosts(), FaultPlan::sampled(7, &two_hosts()));
    assert_same_answers(&c, &clean);
}
