#!/usr/bin/env bash
# Wall-clock benchmark ledger. Runs the criterion harnesses, then the
# bench_ledger kernels against the checked-in baseline, writing
# BENCH_pr7.json at the repo root with per-kernel speedups (the
# baseline is PR 4's measured ledger — the run the probe regression
# was reclaimed against).
#
#   scripts/bench.sh           # full run (minutes on a loaded host)
#   scripts/bench.sh --smoke   # seconds; sanity-checks the harness only
#
# Wall-clock numbers are host-dependent: compare runs on the same quiet
# machine, and treat ±30 % spread on an oversubscribed single core as
# noise (see EXPERIMENTS.md, "Hot-path wall-clock ledger").
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=""
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE="--smoke"
fi

echo "== cargo bench --workspace (criterion)" >&2
if [[ -n "$SMOKE" ]]; then
  # Compile-only in smoke mode; criterion runs take minutes.
  cargo bench --workspace --no-run
else
  cargo bench --workspace
fi

echo "== bench_ledger ${SMOKE:-(full)}" >&2
cargo build --release -p cmpi-bench --bin bench_ledger
./target/release/bench_ledger $SMOKE --pressure \
  --baseline scripts/bench_baseline_pr7.json \
  --out BENCH_pr7.json

echo "ok: wrote BENCH_pr7.json" >&2
