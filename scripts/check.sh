#!/usr/bin/env bash
# Tier-1 gate: everything CI requires before a merge. Run from anywhere;
# fails fast on the first broken step.
#
#   build     release build of the whole workspace
#   test      unit + integration + doc tests
#   tasks     the same root-package test suite with CMPI_EXEC=tasks, so
#             every tier-1 behavior is exercised with ranks as fibers on
#             the worker pool as well as thread-per-rank
#   examples  every example builds and runs to completion
#   profile   profile-smoke: profiled OSU + figures --profile runs, with
#             JSON parse and matrix byte-conservation asserted inside
#   telemetry osu --metrics / figures --health smoke (validated Prometheus
#             + JSON exposition on a 32-rank mixed job), and the overhead
#             gate: telemetry-on vs -off kernel pairs, >2 % fails
#   bench     benches compile; bench_ledger smoke run round-trips its JSON
#   chaos     chaos-midrun: mid-run crash / hang / container-kill runs in
#             release mode (detector conviction, revoke/shrink recovery,
#             deterministic FT Graph 500 answers) plus the failure-detector
#             convergence property test
#   model     exhaustive interleaving + race-detector checks: the checker's
#             own suite, then the shim-ported hot-path structures under
#             --cfg cmpi_model (separate target dir so the normal build
#             cache survives)
#   lint      cmpi-lint repo rules: SAFETY comments, relaxed-ok
#             justifications, hot-path unwrap ban, tag field widths,
#             MpiError Display-test coverage, analyzer-rule inventory
#             in DESIGN.md §17
#   analyze   cmpi-analyze whole-program passes: fiber-blocking taint
#             from the Mpi/fiber-boot seeds, lock-order cycle detection,
#             atomic Release/Acquire pairing audit; any unjustified
#             finding is a hard failure. Both stages archive their JSON
#             findings next to the bench ledger in target/
#   gate      perf gate: best-of-3 smoke bench_ledger kernels (including
#             the task-engine job32 kernel) vs the checked-in baseline,
#             any kernel >10 % slower fails
#   clippy    all targets, warnings are errors
#   fmt       rustfmt in check mode
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release" >&2
cargo build --release

echo "== cargo test -q" >&2
cargo test -q

echo "== cargo test -q (CMPI_EXEC=tasks)" >&2
# The env knob flips every spec that does not pin a mode (see
# crate::exec): the whole suite must hold with ranks as fibers on a
# fixed worker pool. The exec_equiv proptest separately pins
# bit-identical thread/task results; this run catches task-mode-only
# breakage in tests that never mention the engine.
CMPI_EXEC=tasks cargo test -q

echo "== examples smoke" >&2
cargo build --release --examples
for ex in quickstart locality_detection graph500_bfs npb_kernels \
          pgas_gups profile_and_trace fault_injection; do
  echo "-- example: $ex" >&2
  cargo run --release --quiet --example "$ex" >/dev/null
done

echo "== profile smoke" >&2
# The osu bin round-trip-validates the JSON before writing it; the
# profile_and_trace example (run above) asserts byte conservation.
cargo run --release --quiet -p cmpi-osu --bin osu -- latency --max-size 16384 \
  --iters 4 --profile-json target/osu_profile.json >/dev/null
cargo run --release --quiet -p cmpi-bench --bin figures -- --profile >/dev/null

echo "== telemetry smoke (osu --metrics + figures --health)" >&2
# Both validate the Prometheus exposition and JSON snapshot internally
# before printing; --health runs the 32-rank mixed job.
cargo run --release --quiet -p cmpi-osu --bin osu -- latency --max-size 4096 \
  --iters 4 --metrics --metrics-json target/osu_metrics.json >/dev/null
python3 -c "import json; json.load(open('target/osu_metrics.json'))" 2>/dev/null \
  || grep -q '"schema"' target/osu_metrics.json
cargo run --release --quiet -p cmpi-bench --bin figures -- --health >/dev/null

echo "== cargo bench --no-run + bench_ledger smoke" >&2
cargo bench --workspace --no-run
cargo run --release --quiet -p cmpi-bench --bin bench_ledger -- --smoke \
  --out target/bench_smoke.json >/dev/null
python3 -c "import json; json.load(open('target/bench_smoke.json'))" 2>/dev/null \
  || grep -q '"schema"' target/bench_smoke.json

echo "== chaos-midrun (crash / hang / container-kill + detector property test)" >&2
cargo test -q --release --test chaos_midrun
cargo test -q --release -p cmpi-core --test failure_proptest

echo "== model checker (normal cfg self-tests)" >&2
cargo test -q -p cmpi-model

echo "== model checker (--cfg cmpi_model exhaustive runs)" >&2
RUSTFLAGS="--cfg cmpi_model" CARGO_TARGET_DIR=target/model \
  cargo test -q -p cmpi-model
RUSTFLAGS="--cfg cmpi_model" CARGO_TARGET_DIR=target/model \
  cargo test -q -p cmpi-core -p cmpi-shmem -p cmpi-fabric -p cmpi-telemetry --lib

echo "== cmpi-lint" >&2
cargo run --release --quiet -p cmpi-model --bin cmpi-lint -- --json target/lint_findings.json

echo "== cmpi-analyze (call-graph passes; findings are hard failures)" >&2
cargo run --release --quiet -p cmpi-model --bin cmpi-lint -- --analyze \
  --json target/analyze_findings.json
python3 -c "import json; json.load(open('target/analyze_findings.json'))" 2>/dev/null \
  || grep -q '"schema"' target/analyze_findings.json

echo "== bench gate (smoke kernels vs scripts/bench_gate_smoke.json)" >&2
# Best-of-3 smoke kernels against the checked-in baseline; >10 % slower
# on any kernel fails the build (see bench_ledger --gate).
cargo run --release --quiet -p cmpi-bench --bin bench_ledger -- --smoke \
  --gate scripts/bench_gate_smoke.json >/dev/null

echo "== telemetry overhead gate (on/off pairs, budget 2%)" >&2
# Paired on/off runs of the eager, rendezvous and job32 kernels; fails
# if always-on telemetry costs more than 2 % on any of them (see the
# estimator notes in bench_ledger's run_overhead_gate).
cargo run --release --quiet -p cmpi-bench --bin bench_ledger -- --overhead-gate

echo "== cargo clippy --workspace --all-targets -- -D warnings" >&2
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --all --check" >&2
cargo fmt --all --check

echo "ok: all tier-1 checks passed" >&2
